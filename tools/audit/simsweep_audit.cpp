/// \file simsweep_audit.cpp
/// \brief Cross-artifact consistency linter (`simsweep_audit` ctest;
/// DESIGN.md §2.6).
///
/// Clang's -Wthread-safety rejects lock misuse at compile time, but only
/// on hosts that have clang; and no compiler checks the repo's
/// *cross-artifact* contracts — that fault-site and metric-name strings
/// in code, the X-macro catalogs (src/fault/fault_sites.def,
/// src/obs/metric_names.def) and the report-schema family table
/// (tools/check_report.cpp) agree with each other. This tool closes both
/// gaps with a dependency-free single-pass lint that builds and runs
/// everywhere the project builds (it is a first-class ctest, not a
/// script-gated extra).
///
/// Rules (diagnostic format `path:line: audit[rule-id]: message`):
///   fault-site-literal   catalogued site spelled as a raw string (use
///                        fault::sites::k*)
///   fault-site-unknown   site literal that is not in fault_sites.def
///                        (tests may use synthetic `test.*` sites)
///   fault-site-dead      catalog row never referenced by any code
///   metric-literal       registered metric name respelled as a raw
///                        string (use obs::metric::k*)
///   metric-unregistered  metric-shaped literal (or registry-mutation
///                        argument in src/) not derivable from the
///                        catalog: neither a registered leaf nor an
///                        extension of a registered family prefix
///   metric-no-family     catalog row whose top-level segment is missing
///                        from kSchemaFamilies in tools/check_report.cpp
///   metric-dead          catalog row never referenced by any code
///   banned-construct     std::mutex / std::thread / rand() / naked
///                        new[] outside the designated wrapper files
///   unguarded-field      mutable field of a mutex-owning class with no
///                        SIMSWEEP_GUARDED_BY annotation
///
/// Exemption grammar: `// audit:exempt(<reason>)` on the flagged line, or
/// anywhere in the contiguous comment block directly above it, silences
/// banned-construct / unguarded-field / metric rules for that line. The
/// reason is mandatory prose — `audit:exempt` without `(` is ignored, so
/// an exemption can never be empty.
///
/// Usage: simsweep_audit [<repo-root>]   (default: current directory)
/// Exit 0 when clean, 1 on violations, 2 on usage/configuration errors.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace fs = std::filesystem;

namespace {

// ---------------------------------------------------------------------------
// Lexed view of one source file.
// ---------------------------------------------------------------------------

/// A string literal found in code (not in a comment), by line.
struct Literal {
  std::size_t line;  // 1-based
  std::string text;  // contents without quotes, escapes undone for \" only
};

/// One file after the mini-lexer pass. `code` mirrors the input line by
/// line with comments stripped and every string literal collapsed to a
/// single '\x01' marker (markers map to `literals` in order of
/// appearance, per line).
struct LexedFile {
  fs::path path;              // as scanned
  std::string rel;            // repo-relative, '/'-separated (diagnostics)
  std::vector<std::string> code;       // [i] = line i+1, comment-free
  std::vector<Literal> literals;       // in document order
  std::vector<bool> comment_only;      // line had only comment/whitespace
  std::vector<bool> exempt_comment;    // line's comment says audit:exempt(
};

/// Strips //- and /*-comments, collapses string/char literals. Tolerates
/// raw strings (R"delim(...)delim") well enough for this codebase.
LexedFile lex_file(const fs::path& path, const std::string& rel) {
  LexedFile out;
  out.path = path;
  out.rel = rel;
  std::ifstream in(path, std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();

  enum class St { kCode, kLine, kBlock, kStr, kChar, kRaw };
  St st = St::kCode;
  std::string code_line, comment_line, lit, raw_delim;
  std::size_t line = 1;
  bool line_had_code = false;

  const auto flush_line = [&] {
    out.code.push_back(code_line);
    out.comment_only.push_back(!line_had_code);
    out.exempt_comment.push_back(comment_line.find("audit:exempt(") !=
                                 std::string::npos);
    code_line.clear();
    comment_line.clear();
    line_had_code = false;
    ++line;
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    if (c == '\n') {
      if (st == St::kLine) st = St::kCode;
      if (st == St::kStr || st == St::kChar) st = St::kCode;  // unterminated
      flush_line();
      continue;
    }
    switch (st) {
      case St::kCode:
        if (c == '/' && next == '/') {
          st = St::kLine;
          ++i;
        } else if (c == '/' && next == '*') {
          st = St::kBlock;
          ++i;
        } else if (c == '"') {
          // Raw string?  R"delim(
          if (i > 0 && text[i - 1] == 'R' &&
              (i < 2 || !(std::isalnum(static_cast<unsigned char>(
                              text[i - 2])) ||
                          text[i - 2] == '_'))) {
            raw_delim.clear();
            std::size_t j = i + 1;
            while (j < text.size() && text[j] != '(') raw_delim += text[j++];
            i = j;  // at '('
            st = St::kRaw;
            lit.clear();
          } else {
            st = St::kStr;
            lit.clear();
          }
        } else if (c == '\'') {
          st = St::kChar;
          code_line += c;
          line_had_code = true;
        } else {
          code_line += c;
          if (!std::isspace(static_cast<unsigned char>(c)))
            line_had_code = true;
        }
        break;
      case St::kLine:
        comment_line += c;
        break;
      case St::kBlock:
        if (c == '*' && next == '/') {
          st = St::kCode;
          ++i;
        } else {
          comment_line += c;
        }
        break;
      case St::kStr:
        if (c == '\\' && next != '\0') {
          if (next == '"' || next == '\\') lit += next;
          ++i;
        } else if (c == '"') {
          // Adjacent-literal concatenation ("a" "b") is not merged; each
          // piece is recorded separately, which is fine for exact-name
          // checks (catalogued names are never split).
          out.literals.push_back({line, lit});
          code_line += '\x01';
          line_had_code = true;
          st = St::kCode;
        } else {
          lit += c;
        }
        break;
      case St::kChar:
        if (c == '\\' && next != '\0') {
          ++i;
        } else if (c == '\'') {
          code_line += c;
          st = St::kCode;
        }
        break;
      case St::kRaw: {
        const std::string close = ")" + raw_delim + "\"";
        if (text.compare(i, close.size(), close) == 0) {
          out.literals.push_back({line, lit});
          code_line += '\x01';
          line_had_code = true;
          i += close.size() - 1;
          st = St::kCode;
        } else {
          lit += c;
        }
        break;
      }
    }
  }
  if (!code_line.empty() || !comment_line.empty()) flush_line();
  return out;
}

/// True iff line `n` (1-based) is exempted: audit:exempt(...) on the line
/// itself or in the contiguous comment block directly above it.
bool is_exempt(const LexedFile& f, std::size_t n) {
  if (n == 0 || n > f.exempt_comment.size()) return false;
  if (f.exempt_comment[n - 1]) return true;
  for (std::size_t i = n - 1; i >= 1; --i) {
    if (!f.comment_only[i - 1]) return false;
    if (f.exempt_comment[i - 1]) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Small helpers.
// ---------------------------------------------------------------------------

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Finds `token` in `s` with identifier boundaries on both sides.
bool has_ident_token(std::string_view s, std::string_view token) {
  std::size_t pos = 0;
  while ((pos = s.find(token, pos)) != std::string_view::npos) {
    const bool left_ok = pos == 0 || !ident_char(s[pos - 1]);
    const std::size_t end = pos + token.size();
    const bool right_ok = end >= s.size() || !ident_char(s[end]);
    if (left_ok && right_ok) return true;
    pos += 1;
  }
  return false;
}

bool starts_with(std::string_view s, std::string_view p) {
  return s.size() >= p.size() && s.compare(0, p.size(), p) == 0;
}

std::string first_segment(std::string_view name) {
  const std::size_t dot = name.find('.');
  return std::string(dot == std::string_view::npos ? name
                                                   : name.substr(0, dot));
}

// ---------------------------------------------------------------------------
// Catalog parsing.
// ---------------------------------------------------------------------------

struct CatalogEntry {
  std::string ident;  // generated constant, e.g. kSatSolve
  std::string name;   // dotted string, e.g. "sat.solve"
  std::size_t line;   // in the .def file
};

/// Parses `MACRO(ident, "name")` rows (rows may wrap across lines).
/// //-comments are blanked first so doc examples in the catalog header
/// are not mistaken for rows.
std::vector<CatalogEntry> parse_def(const fs::path& path,
                                    std::string_view macro) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  std::string text = ss.str();
  std::size_t c = 0;
  while ((c = text.find("//", c)) != std::string::npos) {
    std::size_t eol = text.find('\n', c);
    if (eol == std::string::npos) eol = text.size();
    for (std::size_t i = c; i < eol; ++i) text[i] = ' ';
    c = eol;
  }
  std::vector<CatalogEntry> rows;
  std::size_t pos = 0, line = 1;
  std::size_t scanned = 0;
  while ((pos = text.find(macro, pos)) != std::string::npos) {
    if (pos > 0 && ident_char(text[pos - 1])) {
      pos += macro.size();
      continue;
    }
    line += static_cast<std::size_t>(
        std::count(text.begin() + static_cast<std::ptrdiff_t>(scanned),
                   text.begin() + static_cast<std::ptrdiff_t>(pos), '\n'));
    scanned = pos;
    std::size_t p = pos + macro.size();
    while (p < text.size() && std::isspace(static_cast<unsigned char>(text[p])))
      ++p;
    if (p >= text.size() || text[p] != '(') {
      pos = p;
      continue;
    }
    ++p;
    CatalogEntry e;
    e.line = line;
    while (p < text.size() && text[p] != ',') e.ident += text[p++];
    while (!e.ident.empty() &&
           std::isspace(static_cast<unsigned char>(e.ident.back())))
      e.ident.pop_back();
    e.ident.erase(0, e.ident.find_first_not_of(" \t\n"));
    const std::size_t q1 = text.find('"', p);
    const std::size_t q2 =
        q1 == std::string::npos ? std::string::npos : text.find('"', q1 + 1);
    if (q2 != std::string::npos) {
      e.name = text.substr(q1 + 1, q2 - q1 - 1);
      rows.push_back(e);
      pos = q2;
    } else {
      pos = p;
    }
  }
  return rows;
}

/// Parses the kSchemaFamilies initializer from tools/check_report.cpp.
std::set<std::string> parse_schema_families(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  std::set<std::string> out;
  const std::size_t anchor = text.find("kSchemaFamilies[]");
  if (anchor == std::string::npos) return out;
  const std::size_t open = text.find('{', anchor);
  const std::size_t close = text.find('}', open);
  if (open == std::string::npos || close == std::string::npos) return out;
  std::size_t p = open;
  while (true) {
    const std::size_t q1 = text.find('"', p);
    if (q1 == std::string::npos || q1 > close) break;
    const std::size_t q2 = text.find('"', q1 + 1);
    if (q2 == std::string::npos || q2 > close) break;
    out.insert(text.substr(q1 + 1, q2 - q1 - 1));
    p = q2 + 1;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Diagnostics.
// ---------------------------------------------------------------------------

struct Auditor {
  int violations = 0;
  void report(const std::string& rel, std::size_t line, const char* rule,
              const std::string& msg) {
    std::printf("%s:%zu: audit[%s]: %s\n", rel.c_str(), line, rule,
                msg.c_str());
    ++violations;
  }
};

// ---------------------------------------------------------------------------
// Rule: banned constructs.
// ---------------------------------------------------------------------------

/// Wrapper files where a given construct is the implementation, not a
/// violation.
bool banned_allowed(std::string_view construct, std::string_view rel) {
  if (construct == "std::mutex")
    return rel == "src/common/thread_annotations.hpp";
  if (construct == "std::thread")
    return rel == "src/parallel/thread_pool.hpp" ||
           rel == "src/parallel/thread_pool.cpp";
  if (construct == "rand()") return rel == "src/common/random.cpp";
  return false;  // naked new[] has no wrapper file
}

void check_banned(Auditor& a, const LexedFile& f) {
  if (!starts_with(f.rel, "src/")) return;
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    const std::string& ln = f.code[i];
    const std::size_t n = i + 1;
    const auto flag = [&](const char* what, const char* fix) {
      if (banned_allowed(what, f.rel) || is_exempt(f, n)) return;
      a.report(f.rel, n, "banned-construct",
               std::string(what) + " outside its wrapper: " + fix);
    };
    if (ln.find("std::mutex") != std::string::npos)
      flag("std::mutex",
           "use common::Mutex (src/common/thread_annotations.hpp) so the "
           "thread-safety analysis can see the lock");
    if (has_ident_token(ln, "thread") &&
        ln.find("std::thread") != std::string::npos)
      flag("std::thread",
           "use parallel::ThreadPool, or justify a dedicated thread with "
           "// audit:exempt(reason)");
    {
      std::size_t pos = 0;
      while ((pos = ln.find("rand", pos)) != std::string::npos) {
        const bool left_ok = pos == 0 || !ident_char(ln[pos - 1]);
        std::size_t p = pos + 4;
        while (p < ln.size() &&
               std::isspace(static_cast<unsigned char>(ln[p])))
          ++p;
        if (left_ok && p < ln.size() && ln[p] == '(')
          flag("rand()",
               "use common::Rng (seeded, forkable, replayable)");
        pos += 4;
      }
    }
    {
      std::size_t pos = 0;
      while ((pos = ln.find("new", pos)) != std::string::npos) {
        const bool left_ok = pos == 0 || !ident_char(ln[pos - 1]);
        const std::size_t end = pos + 3;
        const bool right_ok = end < ln.size() && !ident_char(ln[end]);
        if (left_ok && right_ok) {
          const std::size_t stop = ln.find_first_of(";,)(", end);
          const std::string_view rest =
              std::string_view(ln).substr(end, stop == std::string::npos
                                                   ? std::string::npos
                                                   : stop - end);
          if (rest.find('[') != std::string_view::npos)
            flag("naked new[]",
                 "use std::vector or std::make_unique<T[]>");
        }
        pos = end;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: fault-site literals at injector call sites.
// ---------------------------------------------------------------------------

/// Returns the index into f.literals for the k-th '\x01' marker on line
/// `n`, or npos. Markers and literals appear in the same order.
std::size_t literal_at(const LexedFile& f, std::size_t n,
                       std::size_t k_on_line) {
  std::size_t seen = 0;
  for (std::size_t i = 0; i < f.literals.size(); ++i) {
    if (f.literals[i].line != n) continue;
    if (seen == k_on_line) return i;
    ++seen;
  }
  return std::string::npos;
}

/// Returns the literal indices consumed by injector call sites, so the
/// metric rules never double-report a site name whose family collides
/// with a schema family.
std::set<std::size_t> check_fault_sites(Auditor& a, const LexedFile& f,
                                        const std::set<std::string>& sites) {
  std::set<std::size_t> consumed;
  static constexpr const char* kCalls[] = {"SIMSWEEP_FAULT_POINT", "on_hit",
                                           "with_probability", "FaultError"};
  const bool in_tests = starts_with(f.rel, "tests/");
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    const std::string& ln = f.code[i];
    const std::size_t n = i + 1;
    for (const char* call : kCalls) {
      std::size_t pos = 0;
      while ((pos = ln.find(call, pos)) != std::string::npos) {
        const bool left_ok = pos == 0 || !ident_char(ln[pos - 1]);
        std::size_t p = pos + std::string_view(call).size();
        pos = p;
        if (!left_ok) continue;
        while (p < ln.size() &&
               std::isspace(static_cast<unsigned char>(ln[p])))
          ++p;
        if (p >= ln.size() || ln[p] != '(') continue;
        ++p;
        while (p < ln.size() &&
               std::isspace(static_cast<unsigned char>(ln[p])))
          ++p;
        if (p >= ln.size() || ln[p] != '\x01') continue;  // not a literal
        // Which marker on this line is it?
        std::size_t k = 0;
        for (std::size_t q = 0; q < p; ++q)
          if (ln[q] == '\x01') ++k;
        const std::size_t li = literal_at(f, n, k);
        if (li == std::string::npos) continue;
        consumed.insert(li);
        const std::string& site = f.literals[li].text;
        if (is_exempt(f, n)) continue;
        if (sites.count(site) != 0) {
          a.report(f.rel, n, "fault-site-literal",
                   "site \"" + site +
                       "\" spelled as a raw string; use "
                       "fault::sites constants (fault_sites.def)");
        } else if (!(in_tests && starts_with(site, "test."))) {
          a.report(f.rel, n, "fault-site-unknown",
                   "site \"" + site +
                       "\" is not in src/fault/fault_sites.def (synthetic "
                       "test.* sites are allowed in tests/ only)");
        }
      }
    }
  }
  return consumed;
}

// ---------------------------------------------------------------------------
// Rule: metric-name literals.
// ---------------------------------------------------------------------------

struct MetricCatalog {
  std::set<std::string> leaves;
  std::vector<std::string> families;  // prefixes
  std::set<std::string> schema_families;
};

bool family_prefixed(const MetricCatalog& c, std::string_view name) {
  for (const std::string& p : c.families)
    if (starts_with(name, p) && name.size() > p.size()) return true;
  return false;
}

void check_metric_literals(Auditor& a, const LexedFile& f,
                           const MetricCatalog& cat,
                           const std::set<std::size_t>& site_literals) {
  // The catalog and its generated header legitimately spell every name.
  if (f.rel == "src/obs/metric_names.hpp") return;
  const bool in_src = starts_with(f.rel, "src/");

  // Mutation-call positions (src/ only): registry.add("..."), r.set("..."),
  // counter("...")... — the argument must be catalog-derivable even when
  // its family is not a schema family (catches typo'd families).
  std::set<std::size_t> mutation_literals;
  if (in_src) {
    static constexpr const char* kCalls[] = {"add", "set", "add_value",
                                             "counter", "gauge"};
    for (std::size_t i = 0; i < f.code.size(); ++i) {
      const std::string& ln = f.code[i];
      for (const char* call : kCalls) {
        std::size_t pos = 0;
        while ((pos = ln.find(call, pos)) != std::string::npos) {
          const bool method = pos > 0 && ln[pos - 1] == '.';
          std::size_t p = pos + std::string_view(call).size();
          pos = p;
          if (!method || (p < ln.size() && ident_char(ln[p]))) continue;
          while (p < ln.size() &&
                 std::isspace(static_cast<unsigned char>(ln[p])))
            ++p;
          if (p >= ln.size() || ln[p] != '(') continue;
          ++p;
          while (p < ln.size() &&
                 std::isspace(static_cast<unsigned char>(ln[p])))
            ++p;
          if (p >= ln.size() || ln[p] != '\x01') continue;
          std::size_t k = 0;
          for (std::size_t q = 0; q < p; ++q)
            if (ln[q] == '\x01') ++k;
          const std::size_t li = literal_at(f, i + 1, k);
          if (li != std::string::npos) mutation_literals.insert(li);
        }
      }
    }
  }

  for (std::size_t li = 0; li < f.literals.size(); ++li) {
    if (site_literals.count(li) != 0) continue;
    const Literal& lit = f.literals[li];
    const std::string& name = lit.text;
    if (name.find('.') == std::string::npos) continue;
    if (is_exempt(f, lit.line)) continue;
    const bool registered = cat.leaves.count(name) != 0;
    const bool derived = family_prefixed(cat, name);
    const bool metric_shaped =
        cat.schema_families.count(first_segment(name)) != 0;
    if (registered) {
      a.report(f.rel, lit.line, "metric-literal",
               "registered metric \"" + name +
                   "\" respelled as a raw string; use obs::metric "
                   "constants (metric_names.def)");
    } else if (metric_shaped && !derived) {
      a.report(f.rel, lit.line, "metric-unregistered",
               "metric-shaped name \"" + name +
                   "\" is neither a registered leaf nor derived from a "
                   "registered family prefix (metric_names.def)");
    } else if (!metric_shaped && !derived &&
               mutation_literals.count(li) != 0) {
      a.report(f.rel, lit.line, "metric-unregistered",
               "registry mutation with name \"" + name +
                   "\" outside every schema family; register it in "
                   "metric_names.def and tools/check_report.cpp");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: unguarded fields of mutex-owning classes.
// ---------------------------------------------------------------------------

/// Annotation/specifier macros stripped from member declarations before
/// classification (their parens would otherwise read as function decls).
constexpr const char* kStrippableMacros[] = {
    "SIMSWEEP_GUARDED_BY",     "SIMSWEEP_PT_GUARDED_BY",
    "SIMSWEEP_ACQUIRED_AFTER", "SIMSWEEP_ACQUIRED_BEFORE",
    "alignas"};

/// One top-level member statement of a class body.
struct MemberStmt {
  std::string text;     // depth-1 text, annotation macros stripped
  std::size_t line;     // first line of the statement
  bool guarded = false; // had SIMSWEEP_GUARDED_BY / _PT_GUARDED_BY
};

std::string strip_macros(const std::string& s, bool* guarded) {
  std::string out = s;
  for (const char* m : kStrippableMacros) {
    std::size_t pos;
    while ((pos = out.find(m)) != std::string::npos) {
      std::size_t p = pos + std::string_view(m).size();
      while (p < out.size() &&
             std::isspace(static_cast<unsigned char>(out[p])))
        ++p;
      if (p >= out.size() || out[p] != '(') break;
      int depth = 0;
      std::size_t q = p;
      for (; q < out.size(); ++q) {
        if (out[q] == '(') ++depth;
        if (out[q] == ')' && --depth == 0) break;
      }
      if (std::string_view(m).find("GUARDED_BY") != std::string_view::npos)
        *guarded = true;
      out.erase(pos, q + 1 - pos);
    }
  }
  return out;
}

bool is_data_member(const std::string& stmt) {
  std::string t = stmt;
  t.erase(0, t.find_first_not_of(" \t"));
  if (t.empty()) return false;
  for (const char* kw :
       {"using ", "typedef ", "friend ", "static ", "static_assert",
        "template", "enum ", "enum\t", "class ", "struct ", "union ",
        "explicit ", "virtual ", "operator", "~", "public:", "private:",
        "protected:", "#"})
    if (starts_with(t, kw)) return false;
  if (t.find("constexpr") != std::string::npos) return false;
  if (t.find('(') != std::string::npos) return false;  // function/ctor
  if (t.find("SIMSWEEP_") != std::string::npos) return false;  // macro decl
  // A declaration needs at least a type and a name.
  return t.find(' ') != std::string::npos || t.find('\t') != std::string::npos;
}

bool declares_mutex(const std::string& stmt) {
  return has_ident_token(stmt, "Mutex") ||
         stmt.find("std::mutex") != std::string::npos;
}

/// Mutex *ownership* — a by-value mutex member. A `Mutex&` / `Mutex*`
/// member is a borrowing RAII holder (MutexLock, RankedMutexLock), which
/// does not put the class in charge of a guarded data set.
bool owns_mutex_member(const std::string& stmt) {
  if (!declares_mutex(stmt)) return false;
  return stmt.find('&') == std::string::npos &&
         stmt.find('*') == std::string::npos;
}

bool self_synchronizing(const std::string& stmt) {
  // Types that carry their own synchronization discipline (GUARDED_BY on
  // them would be contradictory) or are immutable after construction.
  if (declares_mutex(stmt)) return true;
  if (stmt.find("atomic<") != std::string::npos) return true;
  if (stmt.find("condition_variable") != std::string::npos) return true;
  std::string t = stmt;
  t.erase(0, t.find_first_not_of(" \t"));
  return starts_with(t, "const ") || starts_with(t, "const\t");
}

void check_guarded_fields(Auditor& a, const LexedFile& f) {
  if (!starts_with(f.rel, "src/")) return;
  // Flatten the code view, remembering line starts.
  std::string all;
  std::vector<std::size_t> line_of;  // per char
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    for (const char c : f.code[i]) {
      all += c;
      line_of.push_back(i + 1);
    }
    all += '\n';
    line_of.push_back(i + 1);
  }

  // Find every class/struct body.
  std::size_t pos = 0;
  while (pos < all.size()) {
    std::size_t cls = std::string::npos;
    for (const char* kw : {"class", "struct"}) {
      std::size_t p = pos;
      while ((p = all.find(kw, p)) != std::string::npos) {
        const bool left_ok = p == 0 || !ident_char(all[p - 1]);
        const std::size_t end = p + std::string_view(kw).size();
        const bool right_ok = end < all.size() && !ident_char(all[end]);
        if (left_ok && right_ok) break;
        p = end;
      }
      if (p != std::string::npos && (cls == std::string::npos || p < cls))
        cls = p;
    }
    if (cls == std::string::npos) break;
    // Head ends at '{' (definition) or ';' (forward decl / member decl).
    std::size_t head_end = cls;
    while (head_end < all.size() && all[head_end] != '{' &&
           all[head_end] != ';')
      ++head_end;
    if (head_end >= all.size() || all[head_end] == ';') {
      pos = head_end + 1;
      continue;
    }
    // Body span via brace matching.
    int depth = 0;
    std::size_t body_end = head_end;
    for (; body_end < all.size(); ++body_end) {
      if (all[body_end] == '{') ++depth;
      if (all[body_end] == '}' && --depth == 0) break;
    }
    // Collect depth-1 member statements.
    std::vector<MemberStmt> members;
    {
      MemberStmt cur;
      cur.line = 0;
      int d = 0;
      for (std::size_t p = head_end; p <= body_end && p < all.size(); ++p) {
        const char c = all[p];
        if (c == '{') {
          ++d;
          if (d == 2) {
            // Entering a nested block: function body or brace init.
            // Skip it entirely; on exit decide by the next depth-1 char.
            int dd = 1;
            std::size_t q = p + 1;
            for (; q < all.size() && dd > 0; ++q) {
              if (all[q] == '{') ++dd;
              if (all[q] == '}') --dd;
            }
            std::size_t r = q;
            while (r < all.size() &&
                   std::isspace(static_cast<unsigned char>(all[r])))
              ++r;
            p = q - 1;
            d = 1;
            if (r >= all.size() || all[r] != ';') {
              cur = MemberStmt{};  // function body: discard statement
            }
            continue;
          }
          continue;
        }
        if (c == '}') {
          --d;
          continue;
        }
        if (d != 1) continue;
        if (c == ';') {
          if (!cur.text.empty()) {
            bool guarded = false;
            cur.text = strip_macros(cur.text, &guarded);
            cur.guarded = guarded;
            members.push_back(cur);
          }
          cur = MemberStmt{};
          continue;
        }
        // Access specifiers end with ':' — cut them out of the stream
        // (but leave '::' alone).
        if (c == ':' && p + 1 < all.size() && all[p + 1] == ':') {
          cur.text += "::";
          ++p;
          continue;
        }
        if (c == ':') {
          std::string t = cur.text;
          t.erase(0, t.find_first_not_of(" \t\n"));
          while (!t.empty() &&
                 std::isspace(static_cast<unsigned char>(t.back())))
            t.pop_back();
          if (t == "public" || t == "private" || t == "protected") {
            cur = MemberStmt{};
            continue;
          }
        }
        if (cur.text.empty() &&
            std::isspace(static_cast<unsigned char>(c)))
          continue;
        if (cur.text.empty()) cur.line = line_of[p];
        cur.text += c;
      }
    }
    const bool owns_mutex = std::any_of(
        members.begin(), members.end(), [](const MemberStmt& m) {
          return is_data_member(m.text) && owns_mutex_member(m.text);
        });
    if (owns_mutex) {
      for (const MemberStmt& m : members) {
        if (!is_data_member(m.text)) continue;
        if (m.guarded || self_synchronizing(m.text)) continue;
        if (is_exempt(f, m.line)) continue;
        std::string decl = m.text;
        decl.erase(0, decl.find_first_not_of(" \t\n"));
        if (decl.size() > 48) decl = decl.substr(0, 48) + "...";
        a.report(f.rel, m.line, "unguarded-field",
                 "field `" + decl +
                     "` of a mutex-owning class has no "
                     "SIMSWEEP_GUARDED_BY and no audit:exempt(reason)");
      }
    }
    pos = head_end + 1;  // nested classes are found by re-scanning
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Driver.
// ---------------------------------------------------------------------------

int main(int argc, char** argv) {
  if (argc > 2) {
    std::fprintf(stderr, "usage: %s [<repo-root>]\n", argv[0]);
    return 2;
  }
  const fs::path root = argc == 2 ? fs::path(argv[1]) : fs::path(".");

  const fs::path fault_def = root / "src/fault/fault_sites.def";
  const fs::path metric_def = root / "src/obs/metric_names.def";
  const fs::path report_tool = root / "tools/check_report.cpp";
  for (const fs::path& p : {fault_def, metric_def, report_tool}) {
    if (!fs::exists(p)) {
      std::fprintf(stderr, "simsweep_audit: missing %s (wrong root?)\n",
                   p.string().c_str());
      return 2;
    }
  }

  const std::vector<CatalogEntry> site_rows =
      parse_def(fault_def, "SIMSWEEP_FAULT_SITE");
  const std::vector<CatalogEntry> metric_rows =
      parse_def(metric_def, "SIMSWEEP_METRIC");
  const std::vector<CatalogEntry> family_rows =
      parse_def(metric_def, "SIMSWEEP_METRIC_FAMILY");

  MetricCatalog cat;
  for (const CatalogEntry& e : metric_rows) cat.leaves.insert(e.name);
  for (const CatalogEntry& e : family_rows) cat.families.push_back(e.name);
  cat.schema_families = parse_schema_families(report_tool);

  std::set<std::string> site_names;
  for (const CatalogEntry& e : site_rows) site_names.insert(e.name);

  if (site_rows.empty() || metric_rows.empty() ||
      cat.schema_families.empty()) {
    std::fprintf(stderr,
                 "simsweep_audit: empty catalog or family table — refusing "
                 "to run a vacuous audit\n");
    return 2;
  }

  // Scan tree.
  std::vector<LexedFile> files;
  for (const char* top : {"src", "tools", "tests", "examples", "bench"}) {
    const fs::path dir = root / top;
    if (!fs::exists(dir)) continue;
    for (auto it = fs::recursive_directory_iterator(dir);
         it != fs::recursive_directory_iterator(); ++it) {
      if (it->is_directory()) {
        const std::string name = it->path().filename().string();
        // The audit's own sources mention every rule trigger by design,
        // and fixture trees are deliberate violations.
        if (name == "audit" || name == "fixtures") it.disable_recursion_pending();
        continue;
      }
      const std::string ext = it->path().extension().string();
      if (ext != ".cpp" && ext != ".hpp" && ext != ".h") continue;
      std::string rel =
          fs::relative(it->path(), root).generic_string();
      files.push_back(lex_file(it->path(), rel));
    }
  }
  std::sort(files.begin(), files.end(),
            [](const LexedFile& x, const LexedFile& y) {
              return x.rel < y.rel;
            });

  Auditor a;
  for (const LexedFile& f : files) {
    check_banned(a, f);
    const std::set<std::size_t> site_literals =
        check_fault_sites(a, f, site_names);
    check_metric_literals(a, f, cat, site_literals);
    check_guarded_fields(a, f);
  }

  // Cross-artifact catalog checks.
  const std::string fault_def_rel = "src/fault/fault_sites.def";
  const std::string metric_def_rel = "src/obs/metric_names.def";
  for (const CatalogEntry& e : site_rows) {
    bool used = false;
    for (const LexedFile& f : files) {
      if (starts_with(f.rel, "src/fault/")) continue;
      for (const std::string& ln : f.code)
        if (has_ident_token(ln, e.ident)) {
          used = true;
          break;
        }
      if (used) break;
    }
    if (!used)
      a.report(fault_def_rel, e.line, "fault-site-dead",
               "catalog row " + e.ident + " (\"" + e.name +
                   "\") is referenced by no fault point or test plan");
  }
  const auto metric_used = [&](const CatalogEntry& e) {
    for (const LexedFile& f : files) {
      if (f.rel == "src/obs/metric_names.hpp") continue;
      for (const std::string& ln : f.code)
        if (has_ident_token(ln, e.ident)) return true;
    }
    return false;
  };
  for (const std::vector<CatalogEntry>* rows : {&metric_rows, &family_rows})
    for (const CatalogEntry& e : *rows) {
      if (!metric_used(e))
        a.report(metric_def_rel, e.line, "metric-dead",
                 "catalog row " + e.ident + " (\"" + e.name +
                     "\") is referenced by no code");
      if (cat.schema_families.count(first_segment(e.name)) == 0)
        a.report(metric_def_rel, e.line, "metric-no-family",
                 "\"" + e.name + "\" is outside every schema family of "
                 "tools/check_report.cpp kSchemaFamilies");
    }

  if (a.violations == 0) {
    std::printf("simsweep_audit: clean (%zu files, %zu fault sites, %zu "
                "metrics, %zu families)\n",
                files.size(), site_rows.size(),
                metric_rows.size(), family_rows.size());
    return 0;
  }
  std::printf("simsweep_audit: %d violation%s\n", a.violations,
              a.violations == 1 ? "" : "s");
  return 1;
}
