#!/usr/bin/env bash
# SimSweep static/dynamic concurrency-analysis driver.
#
# Modes:
#   --ctest (default)  Fast static passes only: clang-tidy (.clang-tidy:
#                      bugprone-*, concurrency-*, performance-*) and the
#                      Clang -Wthread-safety annotation check. Skips
#                      (exit 77, the ctest SKIP code) when no Clang
#                      toolchain is installed — GCC-only hosts still get
#                      the annotations compiled (as no-ops) by the normal
#                      build, just not the analysis.
#   --full             Everything above, plus the dynamic matrix:
#                        * SIMSWEEP_CHECKED build + executor-invariant
#                          death tests (test_parallel)
#                        * SIMSWEEP_SANITIZE=thread build + `ctest -L tsan`
#                        * SIMSWEEP_SANITIZE=address;undefined + full ctest
#
# Exit: 0 = all requested passes clean; 77 = nothing to run (no tools);
#       anything else = a pass failed.
set -u

SRC="${SIMSWEEP_SOURCE_DIR:-$(cd "$(dirname "$0")/.." && pwd)}"
MODE="${1:---ctest}"
JOBS="${SIMSWEEP_ANALYSIS_JOBS:-$(nproc 2>/dev/null || echo 2)}"

ran_any=0
failed=0

note()  { printf '== %s\n' "$*"; }
fail()  { printf 'FAIL: %s\n' "$*" >&2; failed=1; }

# ---------------------------------------------------------------- clang-tidy
run_clang_tidy() {
  local tidy
  tidy=$(command -v clang-tidy || true)
  if [ -z "$tidy" ]; then
    note "clang-tidy not installed - skipping tidy pass"
    return 0
  fi
  ran_any=1
  local db="$SRC/build-analysis"
  note "clang-tidy: configuring compile database in $db"
  cmake -B "$db" -S "$SRC" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
        >/dev/null || { fail "clang-tidy: cmake configure"; return 1; }
  note "clang-tidy: checking src/ (config: .clang-tidy)"
  local rc=0 f
  while IFS= read -r f; do
    "$tidy" -p "$db" --quiet "$f" || rc=1
  done < <(find "$SRC/src" -name '*.cpp' | sort)
  [ "$rc" -eq 0 ] || fail "clang-tidy reported findings"
}

# ------------------------------------------------- Clang thread-safety pass
run_thread_safety() {
  local cxx
  cxx=$(command -v clang++ || true)
  if [ -z "$cxx" ]; then
    note "clang++ not installed - skipping -Wthread-safety pass"
    return 0
  fi
  ran_any=1
  note "-Wthread-safety: syntax-checking src/ with clang++"
  local rc=0 f
  while IFS= read -r f; do
    "$cxx" -fsyntax-only -std=c++20 -Wall -Wextra \
           -Wthread-safety -Werror=thread-safety \
           -I "$SRC/src" "$f" || rc=1
  done < <(find "$SRC/src" -name '*.cpp' | sort)
  [ "$rc" -eq 0 ] || fail "-Wthread-safety pass reported errors"
}

# ------------------------------------------------------- dynamic build matrix
build_and_test() {
  # build_and_test <dir-suffix> <ctest-args...> -- <cmake-args...>
  local dir="$SRC/build-$1"; shift
  local ctest_args=()
  while [ "$#" -gt 0 ] && [ "$1" != "--" ]; do ctest_args+=("$1"); shift; done
  [ "$#" -gt 0 ] && shift  # drop --
  ran_any=1
  note "matrix[$dir]: configure ($*)"
  cmake -B "$dir" -S "$SRC" "$@" >/dev/null \
    || { fail "$dir: configure"; return 1; }
  note "matrix[$dir]: build"
  cmake --build "$dir" -j "$JOBS" >/dev/null \
    || { fail "$dir: build"; return 1; }
  note "matrix[$dir]: ctest ${ctest_args[*]:-}"
  (cd "$dir" && ctest --output-on-failure -j "$JOBS" "${ctest_args[@]}") \
    || fail "$dir: tests"
}

run_full_matrix() {
  # Checked build: executor protocol invariants + the deliberate-violation
  # death tests live in test_parallel.
  build_and_test checked -R 'ThreadPool|StagePlan|Checked|ParallelSweep' \
    -- -DSIMSWEEP_CHECKED=ON
  # TSan over the concurrency-labelled suites.
  build_and_test tsan -L tsan -LE static_analysis \
    -- -DSIMSWEEP_SANITIZE=thread
  # ASan+UBSan over the whole suite (static_analysis itself excluded to
  # avoid recursion).
  build_and_test asan -LE static_analysis \
    -- "-DSIMSWEEP_SANITIZE=address;undefined"
}

case "$MODE" in
  --ctest|--quick)
    run_clang_tidy
    run_thread_safety
    ;;
  --full)
    run_clang_tidy
    run_thread_safety
    run_full_matrix
    ;;
  *)
    echo "usage: $0 [--ctest|--quick|--full]" >&2
    exit 2
    ;;
esac

if [ "$failed" -ne 0 ]; then
  echo "static analysis: FAILED" >&2
  exit 1
fi
if [ "$ran_any" -eq 0 ]; then
  echo "static analysis: no analysis tool available on this host - SKIP"
  exit 77
fi
echo "static analysis: OK"
