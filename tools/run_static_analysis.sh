#!/usr/bin/env bash
# SimSweep static/dynamic concurrency-analysis driver.
#
# Passes (each reported PASS / FAIL / SKIP in the final summary):
#   audit          simsweep_audit cross-artifact linter (DESIGN.md §2.6).
#                  Dependency-free C++ — builds with any host compiler, so
#                  it runs even on GCC-only hosts and the static_analysis
#                  ctest no longer skips there.
#   clang-tidy     .clang-tidy checks (bugprone-*, concurrency-*,
#                  performance-*) over src/, tests/ and bench/, driven by
#                  the build tree's compile_commands.json
#                  (CMAKE_EXPORT_COMPILE_COMMANDS is ON by default).
#   thread-safety  clang++ -Wthread-safety -Wthread-safety-beta
#                  -Werror=thread-safety over src/ (the -beta tier checks
#                  the lock_ranks acquired_after edges).
#   compile-fail   tests/compile_fail/*.cpp must FAIL to compile under the
#                  thread-safety flags (deliberate lock-rank inversions).
#   matrix         (--full only) SIMSWEEP_CHECKED build + executor death
#                  tests; TSan build + `ctest -L tsan`; ASan+UBSan build +
#                  full ctest.
#
# Modes: --ctest (default, static passes only) | --full (adds the matrix).
#
# Exit: 0 = every pass that ran is clean; 77 = ctest SKIP, nothing could
#       run (no compiler at all); 1 = at least one pass failed; 2 = usage.
set -u

SRC="${SIMSWEEP_SOURCE_DIR:-$(cd "$(dirname "$0")/.." && pwd)}"
BUILD="${SIMSWEEP_BUILD_DIR:-$SRC/build}"
MODE="${1:---ctest}"
JOBS="${SIMSWEEP_ANALYSIS_JOBS:-$(nproc 2>/dev/null || echo 2)}"

# Per-pass results, appended as "name:STATUS" (bash-3.2-safe: no
# associative arrays). The summary loop and the exit code derive from
# this list alone, so a pass can never fail without failing the run —
# the exit-propagation bug this rewrite removes.
results=()

note()   { printf '== %s\n' "$*"; }
record() { results+=("$1:$2"); printf '== pass %-14s %s\n' "$1" "$2"; }

# ---------------------------------------------------------------------- audit
run_audit() {
  local bin="${SIMSWEEP_AUDIT_BIN:-}"
  if [ -z "$bin" ] || [ ! -x "$bin" ]; then
    # Standalone invocation (not via ctest): build the linter on the fly
    # with whatever host compiler exists.
    local cxx
    cxx=$(command -v c++ || command -v g++ || command -v clang++ || true)
    if [ -z "$cxx" ]; then
      record audit SKIP "no C++ compiler to build simsweep_audit"
      return 0
    fi
    bin="${TMPDIR:-/tmp}/simsweep_audit.$$"
    note "audit: building simsweep_audit with $cxx"
    if ! "$cxx" -std=c++20 -O1 -o "$bin" \
         "$SRC/tools/audit/simsweep_audit.cpp"; then
      record audit FAIL
      return 0
    fi
    # shellcheck disable=SC2064  # expand now: $bin is local to this fn
    trap "rm -f '$bin'" EXIT
  fi
  note "audit: $bin $SRC"
  if "$bin" "$SRC"; then
    record audit PASS
  else
    record audit FAIL
  fi
}

# ---------------------------------------------------------------- clang-tidy
run_clang_tidy() {
  local tidy
  tidy=$(command -v clang-tidy || true)
  if [ -z "$tidy" ]; then
    record clang-tidy SKIP
    return 0
  fi
  local db="$BUILD"
  if [ ! -f "$db/compile_commands.json" ]; then
    note "clang-tidy: no compile_commands.json in $db - configuring one"
    db="$SRC/build-analysis"
    cmake -B "$db" -S "$SRC" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
          >/dev/null || { record clang-tidy FAIL; return 0; }
  fi
  note "clang-tidy: src/ tests/ bench/ against $db/compile_commands.json"
  local rc=0 f
  while IFS= read -r f; do
    "$tidy" -p "$db" --quiet "$f" || rc=1
  done < <(find "$SRC/src" "$SRC/tests" "$SRC/bench" \
                -name '*.cpp' -not -path '*/fixtures/*' \
                -not -path '*/compile_fail/*' | sort)
  if [ "$rc" -eq 0 ]; then record clang-tidy PASS; else record clang-tidy FAIL; fi
}

# ------------------------------------------------- Clang thread-safety pass
thread_safety_flags() {
  printf '%s\n' -fsyntax-only -std=c++20 -Wall -Wextra \
         -Wthread-safety -Wthread-safety-beta -Werror=thread-safety \
         -I "$SRC/src"
}

run_thread_safety() {
  local cxx
  cxx=$(command -v clang++ || true)
  if [ -z "$cxx" ]; then
    record thread-safety SKIP
    return 0
  fi
  note "-Wthread-safety(-beta): syntax-checking src/ with clang++"
  local rc=0 f
  local flags; mapfile -t flags < <(thread_safety_flags)
  while IFS= read -r f; do
    "$cxx" "${flags[@]}" "$f" || rc=1
  done < <(find "$SRC/src" -name '*.cpp' | sort)
  if [ "$rc" -eq 0 ]; then record thread-safety PASS; else record thread-safety FAIL; fi
}

# ----------------------------------------------------- compile-fail corpus
run_compile_fail() {
  local cxx
  cxx=$(command -v clang++ || true)
  if [ -z "$cxx" ]; then
    record compile-fail SKIP
    return 0
  fi
  local rc=0 f
  local flags; mapfile -t flags < <(thread_safety_flags)
  while IFS= read -r f; do
    note "compile-fail: $f (must NOT compile)"
    if "$cxx" "${flags[@]}" "$f" 2>/dev/null; then
      printf 'compile-fail: %s compiled cleanly but must be rejected\n' \
             "$f" >&2
      rc=1
    fi
  done < <(find "$SRC/tests/compile_fail" -name '*.cpp' 2>/dev/null | sort)
  if [ "$rc" -eq 0 ]; then record compile-fail PASS; else record compile-fail FAIL; fi
}

# ------------------------------------------------------- dynamic build matrix
matrix_failed=0

build_and_test() {
  # build_and_test <dir-suffix> <ctest-args...> -- <cmake-args...>
  local dir="$SRC/build-$1"; shift
  local ctest_args=()
  while [ "$#" -gt 0 ] && [ "$1" != "--" ]; do ctest_args+=("$1"); shift; done
  [ "$#" -gt 0 ] && shift  # drop --
  note "matrix[$dir]: configure ($*)"
  cmake -B "$dir" -S "$SRC" "$@" >/dev/null \
    || { matrix_failed=1; return 1; }
  note "matrix[$dir]: build"
  cmake --build "$dir" -j "$JOBS" >/dev/null \
    || { matrix_failed=1; return 1; }
  note "matrix[$dir]: ctest ${ctest_args[*]:-}"
  (cd "$dir" && ctest --output-on-failure -j "$JOBS" "${ctest_args[@]}") \
    || matrix_failed=1
}

run_full_matrix() {
  # Checked build: executor protocol invariants + the deliberate-violation
  # death tests live in test_parallel.
  build_and_test checked -R 'ThreadPool|StagePlan|Checked|ParallelSweep|IncrementalSim|CecService' \
    -- -DSIMSWEEP_CHECKED=ON
  # TSan over the concurrency-labelled suites.
  build_and_test tsan -L tsan -LE static_analysis \
    -- -DSIMSWEEP_SANITIZE=thread
  # ASan+UBSan over the whole suite (static_analysis itself excluded to
  # avoid recursion).
  build_and_test asan -LE static_analysis \
    -- "-DSIMSWEEP_SANITIZE=address;undefined"
  if [ "$matrix_failed" -eq 0 ]; then record matrix PASS; else record matrix FAIL; fi
}

case "$MODE" in
  --ctest|--quick)
    run_audit
    run_clang_tidy
    run_thread_safety
    run_compile_fail
    ;;
  --full)
    run_audit
    run_clang_tidy
    run_thread_safety
    run_compile_fail
    run_full_matrix
    ;;
  *)
    echo "usage: $0 [--ctest|--quick|--full]" >&2
    exit 2
    ;;
esac

# ------------------------------------------------------------------ summary
echo
echo "static analysis summary:"
ran_any=0
failed=0
for entry in "${results[@]}"; do
  printf '  %-14s %s\n' "${entry%%:*}" "${entry#*:}"
  case "${entry#*:}" in
    PASS) ran_any=1 ;;
    FAIL) ran_any=1; failed=1 ;;
  esac
done

if [ "$failed" -ne 0 ]; then
  echo "static analysis: FAILED" >&2
  exit 1
fi
if [ "$ran_any" -eq 0 ]; then
  echo "static analysis: no analysis tool available on this host - SKIP"
  exit 77
fi
echo "static analysis: OK"
