# Ctest wrapper asserting an EXACT exit code (WILL_FAIL only checks
# "nonzero", which cannot tell a clean diagnostic exit (rc 3) from an
# undecided verdict (rc 2) or a crash). Used by the cli_bad_* tests to
# pin the cec_tool error contract (DESIGN.md §2.4).
#
# Usage:
#   cmake -DEXPECT_RC=<n> -DCMD=<exe> -DARGS=<a;b;c> -P expect_rc.cmake
if(NOT DEFINED EXPECT_RC OR NOT DEFINED CMD)
  message(FATAL_ERROR "expect_rc.cmake: EXPECT_RC and CMD are required")
endif()
if(DEFINED ARGS)
  separate_arguments(ARGS)
endif()
execute_process(COMMAND ${CMD} ${ARGS}
                RESULT_VARIABLE rc
                OUTPUT_VARIABLE out
                ERROR_VARIABLE err)
message(STATUS "expect_rc: '${CMD}' exited ${rc} (want ${EXPECT_RC})")
if(out)
  message(STATUS "stdout:\n${out}")
endif()
if(err)
  message(STATUS "stderr:\n${err}")
endif()
if(NOT rc EQUAL ${EXPECT_RC})
  message(FATAL_ERROR "expected exit code ${EXPECT_RC}, got ${rc}")
endif()
# The error contract also requires a one-line diagnostic on stderr.
if(EXPECT_RC EQUAL 3 AND NOT err MATCHES "error:")
  message(FATAL_ERROR "expected an 'error:' diagnostic on stderr")
endif()
