/// \file check_report.cpp
/// \brief Schema validator for the run report (`report_schema` ctest).
///
/// Runs the same flow as `cec_tool --demo` (multiplier pair, CPU-rescaled
/// engine parameters), writes the run report to argv[1], reads it back
/// and validates it against schema simsweep.run_report.v3 — including the
/// acceptance contract that all five paper-module sections carry nonzero
/// counters, that the v2 robustness sections (`faults`, `degrade`,
/// DESIGN.md §2.4) are present with their expected leaves, and that the
/// v3 checkpoint-durability sections (`ckpt`, `supervisor`, DESIGN.md
/// §2.8) are present. A second (sharded-sweep) and third (batch-service,
/// DESIGN.md §2.9) flow validate the sat_sweeper shard gauges and the
/// per-job/aggregate service reports. Exit code 0 on success, 1 on any
/// failure.
///
/// Usage: ./check_report <report-path>

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "gen/arith.hpp"
#include "gen/suite.hpp"
#include "obs/report.hpp"
#include "portfolio/portfolio.hpp"
#include "service/cec_service.hpp"

namespace {

/// The schema families: every metric name's top-level segment must be one
/// of these (they become the top-level sections of the JSON report). The
/// `simsweep_audit` static-analysis ctest cross-checks this table against
/// the metric catalog src/obs/metric_names.def, so a new family has to be
/// added in both places deliberately.
constexpr const char* kSchemaFamilies[] = {
    "exhaustive", "cut",  "ec",     "partial_sim", "miter",       "engine",
    "pool",       "faults", "degrade", "sat_sweeper", "ckpt", "supervisor",
    "service"};

/// True iff `name` starts with `<family>.` for a known schema family.
bool in_known_family(std::string_view name) {
  const std::size_t dot = name.find('.');
  if (dot == std::string_view::npos) return false;
  const std::string_view family = name.substr(0, dot);
  for (const char* f : kSchemaFamilies)
    if (family == f) return true;
  return false;
}

/// Checks every metric of a snapshot against the family table.
bool check_families(const simsweep::obs::Snapshot& snapshot,
                    const char* which) {
  bool ok = true;
  for (const simsweep::obs::Metric& m : snapshot.metrics) {
    if (in_known_family(m.name)) continue;
    std::fprintf(stderr,
                 "check_report: %s report metric \"%s\" is outside every "
                 "schema family\n",
                 which, m.name.c_str());
    ok = false;
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace simsweep;
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <report-path>\n", argv[0]);
    return 1;
  }
  const std::string path = argv[1];

  // The demo flow of cec_tool: a pair that exercises all five modules.
  gen::SuiteParams sp;
  sp.doublings = 1;
  const gen::BenchCase c = gen::make_case("multiplier", sp);
  portfolio::CombinedParams params;
  params.engine.k_P = 24;
  params.engine.k_p = 14;
  params.engine.k_g = 14;
  const portfolio::CombinedResult r =
      portfolio::combined_check(c.original, c.optimized, params);
  std::printf("check_report: verdict %s in %.3fs, %zu metrics\n",
              to_string(r.verdict), r.total_seconds, r.report.metrics.size());
  if (r.verdict != Verdict::kEquivalent) {
    std::fprintf(stderr, "check_report: demo pair not proved equivalent\n");
    return 1;
  }

  if (!obs::write_json_file(r.report, path)) {
    std::fprintf(stderr, "check_report: cannot write %s\n", path.c_str());
    return 1;
  }

  // Validate the bytes on disk, not the in-memory snapshot: the ctest
  // guards the emitter and the file round-trip together.
  std::string json;
  {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
      std::fprintf(stderr, "check_report: cannot reopen %s\n", path.c_str());
      return 1;
    }
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) json.append(buf, n);
    std::fclose(f);
  }

  std::string error;
  if (!obs::validate_report_json(json, &error)) {
    std::fprintf(stderr, "check_report: invalid report: %s\n", error.c_str());
    return 1;
  }
  if (!check_families(r.report, "demo")) return 1;

  // The generic validator only requires the v2 robustness sections to be
  // present; the demo flow additionally guarantees the specific leaves
  // the engine publishes unconditionally (zero-valued when healthy).
  for (const char* leaf : {"\"faults\"", "\"injected\"", "\"degrade\"",
                           "\"ladder_steps\"", "\"units_abandoned\"",
                           "\"carryover\"", "\"full_resims\"",
                           "\"incremental_words\"", "\"ckpt\"",
                           "\"writes\"", "\"supervisor\"",
                           "\"restarts\""}) {
    if (json.find(leaf) == std::string::npos) {
      std::fprintf(stderr, "check_report: report lacks expected key %s\n",
                   leaf);
      return 1;
    }
  }

  // A healthy (injection-free) demo run must not record any fired fault
  // or ladder activity.
  if (json.find("\"injected\": 0") == std::string::npos) {
    std::fprintf(stderr,
                 "check_report: healthy run reports nonzero faults.injected\n");
    return 1;
  }

  std::printf("check_report: %s is a valid %s report\n", path.c_str(),
              obs::kSchemaId);

  // Second flow: a sharded residue sweep (sweeper.num_threads = 2) on a
  // small multiplier pair. The report must still validate as v3 and
  // additionally carry the sat_sweeper.* shard gauges (DESIGN.md §2.5)
  // — the demo report above, whose sweep is sequential, is the shape
  // without them. k_P below the PI count keeps the P phase from solving
  // the POs outright, so the engine publishes every module section yet
  // still hands a nonempty residue to the sharded sweep.
  const aig::Aig small_a = gen::array_multiplier(4);
  const aig::Aig small_b = gen::wallace_multiplier(4);
  portfolio::CombinedParams shard_params;
  shard_params.engine.enable_po_phase = false;
  shard_params.engine.k_P = 6;
  shard_params.engine.k_p = 4;
  shard_params.engine.k_g = 4;
  shard_params.engine.k_l = 4;
  shard_params.engine.memory_words = 1 << 16;
  shard_params.sweeper.num_threads = 2;
  shard_params.sweeper.pairs_per_chunk = 4;
  const portfolio::CombinedResult rs =
      portfolio::combined_check(small_a, small_b, shard_params);
  if (rs.verdict != Verdict::kEquivalent) {
    std::fprintf(stderr, "check_report: sharded-sweep pair not proved\n");
    return 1;
  }
  std::string shard_json = obs::to_json(rs.report);
  if (!obs::validate_report_json(shard_json, &error)) {
    std::fprintf(stderr, "check_report: invalid sharded report: %s\n",
                 error.c_str());
    return 1;
  }
  if (!check_families(rs.report, "sharded")) return 1;
  for (const char* leaf :
       {"\"shards\"", "\"chunks\"", "\"steals\"", "\"board_merges\"",
        "\"cex_shared\"", "\"pairs_sim_resolved\"", "\"parallel_fallbacks\"",
        "\"shard\"", "\"ckpt\"", "\"supervisor\""}) {
    if (shard_json.find(leaf) == std::string::npos) {
      std::fprintf(stderr,
                   "check_report: sharded report lacks expected key %s\n",
                   leaf);
      return 1;
    }
  }
  std::printf("check_report: sharded-sweep report carries the "
              "sat_sweeper shard gauges\n");

  // Third flow: the batch job service (DESIGN.md §2.9). Three jobs — the
  // multiplier pair, the same pair again (must be a fingerprint cache
  // hit), and an adder pair — through one CecService. Each job's
  // per-job report must be a valid v3 report of its own, the duplicate's
  // report must be byte-identical to the original's, and the service's
  // aggregate snapshot must stay inside the `service` schema family.
  {
    service::ServiceParams svc_params;
    svc_params.max_concurrent_jobs = 2;
    service::CecService svc(svc_params);
    std::vector<service::JobSpec> jobs(3);
    jobs[0].id = "mult";
    jobs[0].a = small_a;
    jobs[0].b = small_b;
    jobs[0].params = shard_params;
    jobs[1] = jobs[0];
    jobs[1].id = "mult-again";
    jobs[2].id = "adder";
    jobs[2].a = gen::ripple_adder(8);
    jobs[2].b = gen::kogge_stone_adder(8);
    jobs[2].params = shard_params;
    const std::vector<service::JobResult> results =
        svc.run_batch(std::move(jobs));
    for (const service::JobResult& r : results) {
      if (r.verdict != Verdict::kEquivalent || !r.error.empty()) {
        std::fprintf(stderr, "check_report: batch job %s failed: %s\n",
                     r.id.c_str(), r.error.c_str());
        return 1;
      }
      if (!check_families(r.report, r.id.c_str())) return 1;
    }
    const std::string job_json = obs::to_json(results[0].report);
    if (!obs::validate_report_json(job_json, &error)) {
      std::fprintf(stderr, "check_report: invalid per-job report: %s\n",
                   error.c_str());
      return 1;
    }
    if (!results[1].cache_hit ||
        obs::to_json(results[1].report) != job_json) {
      std::fprintf(stderr,
                   "check_report: resubmitted job is not a cache hit with "
                   "an identical report\n");
      return 1;
    }
    const obs::Snapshot agg = svc.metrics();
    if (!check_families(agg, "service")) return 1;
    const std::string svc_json = obs::to_json(agg);
    for (const char* leaf :
         {"\"jobs_submitted\"", "\"jobs_completed\"", "\"cache_hits\"",
          "\"cache_misses\"", "\"jobs_rejected\""}) {
      if (svc_json.find(leaf) == std::string::npos) {
        std::fprintf(stderr,
                     "check_report: service snapshot lacks expected key %s\n",
                     leaf);
        return 1;
      }
    }
    if (svc_json.find("\"cache_hits\": 1") == std::string::npos) {
      std::fprintf(stderr,
                   "check_report: batch flow did not record the cache hit\n");
      return 1;
    }
    std::printf("check_report: batch-service flow emits valid per-job "
                "reports and service counters\n");
  }
  return 0;
}
