/// \file bench_incremental.cpp
/// \brief A/B benchmark of the incremental signature carry-over layer
/// (DESIGN.md §2.7): the full engine flow on an array-vs-Wallace
/// multiplier miter — the repeated-L-phase workload whose per-phase full
/// re-simulations the layer eliminates — with EngineParams::incremental_sim
/// off (the pre-incremental behaviour: every phase entry and every CEX
/// refinement round re-simulates the whole bank and rebuilds classes) vs
/// on (delta simulation + rebuild carry-over).
///
/// Metrics per config: engine runs per wall second, partial-simulation
/// words actually simulated per run (full re-simulation words + delta
/// columns), full re-simulations and carried classes per run. The JSON
/// emitter (`--json FILE [--smoke]`) writes one row per config plus the
/// incremental/baseline ratios; both configs must reach the identical
/// verdict (the bench aborts otherwise — carry-over is only a win if it
/// is invisible to the checker).

// Compile-time guarantee that this benchmark carries no sanitizer
// instrumentation: instrumented numbers would poison the perf trajectory.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#error "bench targets must be built without sanitizer instrumentation"
#endif
#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#error "bench targets must be built without sanitizer instrumentation"
#endif
#endif

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/verdict.hpp"
#include "engine/engine.hpp"
#include "gen/arith.hpp"
#include "obs/metric_names.hpp"

namespace {

using namespace simsweep;

struct JsonRow {
  std::string name;
  std::size_t reps = 0;
  double wall_seconds = 0.0;
  double runs_per_sec = 0.0;
  std::uint64_t sim_words = 0;        ///< full-resim words over all reps
  std::uint64_t incremental_words = 0;  ///< delta columns over all reps
  std::uint64_t full_resims = 0;
  std::uint64_t carry_classes = 0;
  std::uint64_t local_phases = 0;
  Verdict verdict = Verdict::kUndecided;
};

/// Engine shape that forces the repeated-L-phase loop: PO phase off, a
/// deliberately small k_g so the G phase leaves internal residue, and the
/// default multi-pass L ladder chewing through it across several phases.
engine::EngineParams ab_params(bool incremental) {
  engine::EngineParams p;
  p.enable_po_phase = false;
  p.k_P = 12;
  p.k_p = 4;
  p.k_g = 5;
  p.k_l = 6;
  p.memory_words = 1 << 16;
  p.incremental_sim = incremental;
  return p;
}

JsonRow measure(const std::string& name, const aig::Aig& a, const aig::Aig& b,
                bool incremental, std::size_t min_reps, double min_seconds) {
  JsonRow row;
  row.name = name;
  const engine::EngineParams p = ab_params(incremental);
  (void)engine::SimCecEngine(p).check(a, b);  // warm-up
  const auto start = std::chrono::steady_clock::now();
  double elapsed = 0.0;
  do {
    const engine::EngineResult r = engine::SimCecEngine(p).check(a, b);
    row.verdict = r.verdict;
    row.sim_words += r.report.count(obs::metric::kPartialSimPatternWords);
    row.incremental_words +=
        r.report.count(obs::metric::kPartialSimIncrementalWords);
    row.full_resims += r.report.count(obs::metric::kPartialSimFullResims);
    row.carry_classes += r.report.count(obs::metric::kPartialSimCarryClasses);
    row.local_phases += r.stats.local_phases;
    ++row.reps;
    elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            start)
                  .count();
  } while (row.reps < min_reps || elapsed < min_seconds);
  row.wall_seconds = elapsed;
  row.runs_per_sec = static_cast<double>(row.reps) / elapsed;
  return row;
}

int run_json(const char* path, bool smoke) {
  // Array vs Wallace multiplier: structurally different implementations
  // with many internal equivalences, decided over several G/L rounds —
  // the repeated-rebuild shape the carry-over layer targets.
  const unsigned bits = smoke ? 4 : 5;
  const aig::Aig a = gen::array_multiplier(bits);
  const aig::Aig b = gen::wallace_multiplier(bits);
  const std::size_t min_reps = smoke ? 2 : 5;
  const double min_seconds = smoke ? 0.2 : 2.0;

  std::vector<JsonRow> rows;
  rows.push_back(
      measure("full_resim_baseline", a, b, false, min_reps, min_seconds));
  rows.push_back(
      measure("incremental_carryover", a, b, true, min_reps, min_seconds));

  // Acceptance: the A/B lever must be invisible to the verdict.
  for (const JsonRow& r : rows) {
    if (r.verdict != rows[0].verdict) {
      std::fprintf(stderr,
                   "bench_incremental: verdict mismatch in %s (%s vs %s)\n",
                   r.name.c_str(), to_string(r.verdict),
                   to_string(rows[0].verdict));
      return 1;
    }
  }

  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_incremental: cannot open %s for writing\n",
                 path);
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"bench_incremental\",\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
  std::fprintf(f,
               "  \"workload\": \"engine flow, array vs wallace multiplier, "
               "%u bits\",\n",
               bits);
  std::fprintf(f,
               "  \"metric\": \"runs_per_sec = full engine checks per wall "
               "second; sim_words_per_run = full-bank re-simulation words "
               "per check\",\n  \"configs\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const JsonRow& r = rows[i];
    const double per_run = 1.0 / static_cast<double>(r.reps);
    std::fprintf(
        f,
        "    {\"name\": \"%s\", \"reps\": %zu, \"wall_seconds\": %.6f, "
        "\"runs_per_sec\": %.4e, \"sim_words_per_run\": %.1f, "
        "\"incremental_words_per_run\": %.1f, \"full_resims_per_run\": "
        "%.2f, \"carry_classes_per_run\": %.1f, \"local_phases_per_run\": "
        "%.2f, \"verdict\": \"%s\"}%s\n",
        r.name.c_str(), r.reps, r.wall_seconds, r.runs_per_sec,
        static_cast<double>(r.sim_words) * per_run,
        static_cast<double>(r.incremental_words) * per_run,
        static_cast<double>(r.full_resims) * per_run,
        static_cast<double>(r.carry_classes) * per_run,
        static_cast<double>(r.local_phases) * per_run,
        to_string(r.verdict), i + 1 < rows.size() ? "," : "");
  }
  const JsonRow& base = rows[0];
  const JsonRow& inc = rows[1];
  const double words_base =
      static_cast<double>(base.sim_words) / static_cast<double>(base.reps);
  const double words_inc =
      static_cast<double>(inc.sim_words + inc.incremental_words) /
      static_cast<double>(inc.reps);
  std::fprintf(f, "  ],\n  \"incremental_vs_baseline\": {");
  std::fprintf(f, "\"speedup\": %.3f, \"sim_words_ratio\": %.4f}\n}\n",
               inc.runs_per_sec / base.runs_per_sec,
               words_base > 0 ? words_inc / words_base : 0.0);
  if (std::ferror(f) != 0 || std::fclose(f) != 0) {
    std::fprintf(stderr, "bench_incremental: write to %s failed\n", path);
    return 1;
  }

  for (const JsonRow& r : rows)
    std::printf("%-22s %6zu reps %9.3f s  %.4e runs/sec  %.3e sim words + "
                "%.3e delta words  %s\n",
                r.name.c_str(), r.reps, r.wall_seconds, r.runs_per_sec,
                static_cast<double>(r.sim_words),
                static_cast<double>(r.incremental_words),
                to_string(r.verdict));
  std::printf("wrote %s\n", path);
  return 0;
}

int usage() {
  std::fprintf(stderr, "usage: bench_incremental --json FILE [--smoke]\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("uninstrumented: ok (no sanitizer feature macros at build)\n");
  const char* json_path = nullptr;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      if (i + 1 >= argc) return usage();
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      return usage();
    }
  }
  if (json_path == nullptr) return usage();
  return run_json(json_path, smoke);
}
