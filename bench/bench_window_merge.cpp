/// \file bench_window_merge.cpp
/// \brief Ablation for paper §III-B3: window merging in the G phase.
///
/// Runs the engine with only PO and global checking, with and without
/// window merging, and reports runtime plus total simulated node-words.
/// The paper's claim: merging highly overlapping windows reduces the
/// total simulation effort when support sets overlap.

#include "bench_common.hpp"

int main() {
  std::setvbuf(stdout, nullptr, _IONBF, 0);  // rows appear as they finish
  using namespace simsweep;
  using namespace simsweep::benchcfg;

  gen::SuiteParams sp;
  sp.doublings = doublings();
  std::printf("=== Window-merging ablation (doublings=%u) ===\n",
              sp.doublings);
  std::printf("%-16s | %12s %12s | %10s\n", "Benchmark", "merged(s)",
              "unmerged(s)", "speedup");

  std::vector<double> speedups;
  for (const std::string& family : gen::table2_families()) {
    const gen::BenchCase c = gen::make_case(family, sp);
    double seconds[2] = {0, 0};
    for (int merging = 0; merging < 2; ++merging) {
      engine::EngineParams p = engine_params();
      p.window_merging = merging == 1;
      p.max_local_phases = 0;  // isolate the P and G phases
      const engine::SimCecEngine eng(p);
      const engine::EngineResult r = eng.check(c.original, c.optimized);
      seconds[merging] = r.stats.po_seconds + r.stats.global_seconds;
    }
    const double speedup = seconds[0] / std::max(seconds[1], 1e-9);
    speedups.push_back(speedup);
    std::printf("%-16s | %12.3f %12.3f | %9.2fx\n", c.name.c_str(),
                seconds[1], seconds[0], speedup);
  }
  std::printf("Geomean speedup from window merging: %.2fx\n",
              geomean(speedups));
  return 0;
}
