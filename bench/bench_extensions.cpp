/// \file bench_extensions.cpp
/// \brief Ablation of the paper §V (Discussion) extensions: EC transfer
/// to the SAT sweeper, distance-1 CEX simulation, adaptive L passes and
/// graduated global-checking escalation. Reports total combined-flow time
/// and engine reduction with each extension toggled.

#include "bench_common.hpp"

int main() {
  std::setvbuf(stdout, nullptr, _IONBF, 0);  // rows appear as they finish
  using namespace simsweep;
  using namespace simsweep::benchcfg;

  gen::SuiteParams sp;
  sp.doublings = doublings();
  std::printf("=== §V extension ablation (doublings=%u) ===\n",
              sp.doublings);
  std::printf("%-16s | %18s %18s %18s %18s\n", "Benchmark",
              "baseline", "no-ec-transfer", "no-escalation", "+dist1+adapt");
  std::printf("%-16s | %18s %18s %18s %18s\n", "",
              "total(s)/red%", "total(s)/red%", "total(s)/red%",
              "total(s)/red%");

  // Partial-reduction families where the extensions matter most.
  for (const std::string& family :
       {std::string("hyp"), std::string("sqrt"), std::string("voter"),
        std::string("multiplier")}) {
    const gen::BenchCase c = gen::make_case(family, sp);
    std::printf("%-16s |", c.name.c_str());
    for (int config = 0; config < 4; ++config) {
      portfolio::CombinedParams p = combined_params();
      p.engine.time_limit = time_budget() / 2;
      p.sweeper.time_limit = time_budget() / 2;
      switch (config) {
        case 0: break;                              // baseline (defaults)
        case 1: p.transfer_ec = false; break;       // §V item 1 off
        case 2: p.engine.escalate_global = false; break;
        case 3:
          p.engine.distance1_cex = true;            // §V item 3
          p.engine.adaptive_passes = true;          // §V item 2
          break;
      }
      const portfolio::CombinedResult r =
          portfolio::combined_check(c.original, c.optimized, p);
      std::printf(" %9.2f%s/%5.1f%%",
                  r.total_seconds,
                  r.verdict == Verdict::kEquivalent ? "" : "?",
                  r.reduction_percent);
    }
    std::printf("\n");
  }
  std::printf(
      "\n(expectation: disabling escalation lowers the reduction column on\n"
      " arithmetic cases; EC transfer trims the SAT share of the total;\n"
      " distance-1/adaptive are quality/runtime tweaks, not correctness.)\n");
  return 0;
}
