/// \file bench_exhaustive.cpp
/// \brief Microbenchmarks of the exhaustive simulator (paper Alg. 1):
/// throughput versus support size, batch size, memory budget (round
/// decomposition) and window merging.
///
/// Besides the google-benchmark suite, the binary has a JSON emitter mode
/// (`--json FILE [--smoke]`) that measures the two canonical parallelism
/// shapes of paper Fig. 3 — many small windows (window-dimension
/// parallelism) and few large windows (level-batch dimension) — and writes
/// words-simulated/sec plus wall time per config, so the perf trajectory of
/// the simulator is tracked in CI (`ctest -L bench`, target `bench_smoke`).

// Compile-time guarantee that this benchmark carries no sanitizer
// instrumentation (the ctest `bench_smoke` run asserts it at runtime
// too): instrumented numbers would silently poison the perf trajectory.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#error "bench targets must be built without sanitizer instrumentation"
#endif
#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#error "bench targets must be built without sanitizer instrumentation"
#endif
#endif

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "aig/aig_analysis.hpp"
#include "aig/miter.hpp"
#include "exhaustive/exhaustive_sim.hpp"
#include "gen/arith.hpp"
#include "obs/registry.hpp"
#include "window/window_merge.hpp"

namespace {

using namespace simsweep;

/// Windows over an adder-vs-balanced-adder miter: every PO pair check.
std::vector<window::Window> po_windows(const aig::Aig& miter,
                                       unsigned max_support) {
  const auto supports = aig::compute_supports(miter, max_support);
  std::vector<window::Window> out;
  for (std::size_t i = 0; i < miter.num_pos(); ++i) {
    const aig::Var v = aig::lit_var(miter.po(i));
    if (v == 0 || !supports.small(v)) continue;
    auto w = window::build_window(
        miter, supports.sets[v],
        {window::CheckItem{miter.po(i), aig::kLitFalse,
                           static_cast<std::uint32_t>(i)}});
    if (w) out.push_back(std::move(*w));
  }
  return out;
}

/// `copies` independent XOR-tree circuits over `width` PIs each: the
/// many-small-windows shape (third parallelism dimension of paper Fig. 3).
aig::Aig xor_forest(unsigned copies, unsigned width) {
  aig::Aig a(copies * width);
  for (unsigned c = 0; c < copies; ++c) {
    aig::Lit acc = a.pi_lit(width * c);
    for (unsigned i = 1; i < width; ++i)
      acc = a.add_xor(acc, a.pi_lit(width * c + i));
    a.add_po(acc);
  }
  return a;
}

std::vector<window::Window> xor_forest_windows(const aig::Aig& a,
                                               unsigned width) {
  const auto supports = aig::compute_supports(a, width);
  std::vector<window::Window> windows;
  for (std::size_t i = 0; i < a.num_pos(); ++i) {
    auto w = window::build_window(
        a, supports.sets[aig::lit_var(a.po(i))],
        {window::CheckItem{a.po(i), a.po(i),
                           static_cast<std::uint32_t>(i)}});
    windows.push_back(std::move(*w));
  }
  return windows;
}

/// Throughput of exhaustive PO checking vs adder width (support = 2n).
void BM_ExhaustiveSupportSize(benchmark::State& state) {
  const unsigned n = static_cast<unsigned>(state.range(0));
  const aig::Aig m =
      aig::make_miter(gen::ripple_adder(n), gen::kogge_stone_adder(n));
  const auto windows = po_windows(m, 2 * n + 1);
  std::size_t words = 0;
  for (auto _ : state) {
    const auto r = exhaustive::check_batch(m, windows, {});
    benchmark::DoNotOptimize(r.outcomes.data());
    words += r.words_simulated;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(words) * 64);
  state.counters["windows"] = static_cast<double>(windows.size());
}
BENCHMARK(BM_ExhaustiveSupportSize)->DenseRange(4, 10, 2);

/// Effect of the memory budget M: smaller budgets force more rounds
/// (Alg. 1 lines 2-5) over the same total work.
void BM_ExhaustiveMemoryBudget(benchmark::State& state) {
  const aig::Aig m = aig::make_miter(gen::ripple_adder(9),
                                     gen::kogge_stone_adder(9));
  const auto windows = po_windows(m, 19);
  exhaustive::Params p;
  p.memory_words = static_cast<std::size_t>(state.range(0));
  std::size_t rounds = 0;
  for (auto _ : state) {
    const auto r = exhaustive::check_batch(m, windows, p);
    benchmark::DoNotOptimize(r.outcomes.data());
    rounds = r.rounds;
  }
  state.counters["rounds"] = static_cast<double>(rounds);
}
BENCHMARK(BM_ExhaustiveMemoryBudget)->RangeMultiplier(8)->Range(1 << 10, 1 << 22);

/// Window merging: same checks with and without merging.
void BM_WindowMerging(benchmark::State& state) {
  const bool merge = state.range(0) != 0;
  const aig::Aig m = aig::make_miter(gen::ripple_adder(8),
                                     gen::kogge_stone_adder(8));
  for (auto _ : state) {
    auto windows = po_windows(m, 17);
    if (merge) windows = window::merge_windows(m, std::move(windows), 17);
    const auto r = exhaustive::check_batch(m, windows, {});
    benchmark::DoNotOptimize(r.outcomes.data());
  }
}
BENCHMARK(BM_WindowMerging)->Arg(0)->Arg(1);

/// Batch growth: many independent small windows (third parallelism
/// dimension of paper Fig. 3).
void BM_ExhaustiveBatchSize(benchmark::State& state) {
  const unsigned copies = static_cast<unsigned>(state.range(0));
  const aig::Aig a = xor_forest(copies, 8);
  const auto windows = xor_forest_windows(a, 8);
  for (auto _ : state) {
    const auto r = exhaustive::check_batch(a, windows, {});
    benchmark::DoNotOptimize(r.outcomes.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          copies);
}
BENCHMARK(BM_ExhaustiveBatchSize)->RangeMultiplier(4)->Range(4, 256);

// ---------------------------------------------------------------------------
// JSON emitter (--json FILE [--smoke]): fixed configs, stable metric.
// ---------------------------------------------------------------------------

struct JsonRow {
  std::string name;
  std::size_t windows = 0;
  std::size_t reps = 0;
  double wall_seconds = 0.0;
  std::size_t words_simulated = 0;
  double words_per_sec = 0.0;
  std::size_t rounds = 0;
  std::size_t entry_words = 0;
  /// Simulator counters accumulated over the timed reps (obs registry
  /// snapshot; publishing happens at batch end, outside the hot loops, so
  /// the overhead contract of DESIGN.md §2.3 keeps the numbers honest).
  obs::Snapshot obs;
};

JsonRow measure(const char* name, const aig::Aig& a,
                const std::vector<window::Window>& windows,
                std::size_t min_reps, double min_seconds) {
  JsonRow row;
  row.name = name;
  row.windows = windows.size();
  obs::Registry registry;
  exhaustive::Params params;
  params.obs = &registry;
  // Warm-up rep (first-touch page faults, cache fill) — uninstrumented so
  // the counters cover exactly the timed reps.
  (void)exhaustive::check_batch(a, windows, {});
  const auto start = std::chrono::steady_clock::now();
  double elapsed = 0.0;
  do {
    const auto r = exhaustive::check_batch(a, windows, params);
    benchmark::DoNotOptimize(r.outcomes.data());
    row.words_simulated += r.words_simulated;
    row.rounds = r.rounds;
    row.entry_words = r.entry_words;
    ++row.reps;
    elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            start)
                  .count();
  } while (row.reps < min_reps || elapsed < min_seconds);
  row.wall_seconds = elapsed;
  row.words_per_sec =
      static_cast<double>(row.words_simulated) / row.wall_seconds;
  row.obs = registry.snapshot();
  return row;
}

int run_json(const char* path, bool smoke) {
  std::vector<JsonRow> rows;

  // Config 1: many small windows. 128 independent 10-input XOR trees; the
  // adaptive simulator should pick window-dimension parallelism (each
  // worker sweeps whole windows serially, zero cross-window barriers).
  {
    const aig::Aig a = xor_forest(128, 10);
    const auto windows = xor_forest_windows(a, 10);
    rows.push_back(measure("many_small_windows", a, windows,
                           smoke ? 3 : 20, smoke ? 0.2 : 2.0));
  }

  // Config 2: few large windows. PO checks of a 9-bit ripple-vs-Kogge-Stone
  // adder miter: ~11 windows with up to 19 inputs (8192-word tables) and
  // deep level structure — the level-batch parallelism dimension, decomposed
  // into multiple rounds by the memory cap.
  {
    const aig::Aig m = aig::make_miter(gen::ripple_adder(9),
                                       gen::kogge_stone_adder(9));
    const auto windows = po_windows(m, 19);
    rows.push_back(measure("few_large_windows", m, windows,
                           smoke ? 2 : 5, smoke ? 0.2 : 2.0));
  }

  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_exhaustive: cannot open %s for writing\n",
                 path);
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"bench_exhaustive\",\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n  \"configs\": [\n",
               smoke ? "smoke" : "full");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const JsonRow& r = rows[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"windows\": %zu, \"reps\": %zu, "
                 "\"wall_seconds\": %.6f, \"words_simulated\": %zu, "
                 "\"words_per_sec\": %.3e, \"rounds\": %zu, "
                 "\"entry_words\": %zu,\n     \"obs\": {",
                 r.name.c_str(), r.windows, r.reps, r.wall_seconds,
                 r.words_simulated, r.words_per_sec, r.rounds, r.entry_words);
    // Simulator counters with flat dotted keys, next to the perf metric.
    for (std::size_t m = 0; m < r.obs.metrics.size(); ++m) {
      const obs::Metric& metric = r.obs.metrics[m];
      if (metric.kind == obs::MetricKind::kCounter)
        std::fprintf(f, "%s\"%s\": %llu", m > 0 ? ", " : "",
                     metric.name.c_str(),
                     static_cast<unsigned long long>(metric.count));
      else
        std::fprintf(f, "%s\"%s\": %.9g", m > 0 ? ", " : "",
                     metric.name.c_str(), metric.value);
    }
    std::fprintf(f, "}}%s\n", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  if (std::ferror(f) != 0 || std::fclose(f) != 0) {
    std::fprintf(stderr, "bench_exhaustive: write to %s failed\n", path);
    return 1;
  }

  for (const JsonRow& r : rows)
    std::printf("%-22s %8zu reps  %9.3f s  %.3e words/sec\n", r.name.c_str(),
                r.reps, r.wall_seconds, r.words_per_sec);
  std::printf("wrote %s\n", path);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Runtime echo of the compile-time instrumentation guard above: the
  // ctest bench_smoke log records that the binary it timed was clean.
  std::printf("uninstrumented: ok (no sanitizer feature macros at build)\n");
  const char* json_path = nullptr;
  bool smoke = false;
  std::vector<char*> rest;
  rest.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --json requires an output path\n");
        return 1;
      }
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      rest.push_back(argv[i]);
    }
  }
  if (json_path != nullptr) return run_json(json_path, smoke);
  int rest_argc = static_cast<int>(rest.size());
  benchmark::Initialize(&rest_argc, rest.data());
  if (benchmark::ReportUnrecognizedArguments(rest_argc, rest.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
