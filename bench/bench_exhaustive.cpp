/// \file bench_exhaustive.cpp
/// \brief Microbenchmarks of the exhaustive simulator (paper Alg. 1):
/// throughput versus support size, batch size, memory budget (round
/// decomposition) and window merging.

#include <benchmark/benchmark.h>

#include "aig/aig_analysis.hpp"
#include "aig/miter.hpp"
#include "exhaustive/exhaustive_sim.hpp"
#include "gen/arith.hpp"
#include "window/window_merge.hpp"

namespace {

using namespace simsweep;

/// Windows over an adder-vs-balanced-adder miter: every PO pair check.
std::vector<window::Window> po_windows(const aig::Aig& miter,
                                       unsigned max_support) {
  const auto supports = aig::compute_supports(miter, max_support);
  std::vector<window::Window> out;
  for (std::size_t i = 0; i < miter.num_pos(); ++i) {
    const aig::Var v = aig::lit_var(miter.po(i));
    if (v == 0 || !supports.small(v)) continue;
    auto w = window::build_window(
        miter, supports.sets[v],
        {window::CheckItem{miter.po(i), aig::kLitFalse,
                           static_cast<std::uint32_t>(i)}});
    if (w) out.push_back(std::move(*w));
  }
  return out;
}

/// Throughput of exhaustive PO checking vs adder width (support = 2n).
void BM_ExhaustiveSupportSize(benchmark::State& state) {
  const unsigned n = static_cast<unsigned>(state.range(0));
  const aig::Aig m =
      aig::make_miter(gen::ripple_adder(n), gen::kogge_stone_adder(n));
  const auto windows = po_windows(m, 2 * n + 1);
  std::size_t words = 0;
  for (auto _ : state) {
    const auto r = exhaustive::check_batch(m, windows, {});
    benchmark::DoNotOptimize(r.outcomes.data());
    words += r.words_simulated;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(words) * 64);
  state.counters["windows"] = static_cast<double>(windows.size());
}
BENCHMARK(BM_ExhaustiveSupportSize)->DenseRange(4, 10, 2);

/// Effect of the memory budget M: smaller budgets force more rounds
/// (Alg. 1 lines 2-5) over the same total work.
void BM_ExhaustiveMemoryBudget(benchmark::State& state) {
  const aig::Aig m = aig::make_miter(gen::ripple_adder(9),
                                     gen::kogge_stone_adder(9));
  const auto windows = po_windows(m, 19);
  exhaustive::Params p;
  p.memory_words = static_cast<std::size_t>(state.range(0));
  std::size_t rounds = 0;
  for (auto _ : state) {
    const auto r = exhaustive::check_batch(m, windows, p);
    benchmark::DoNotOptimize(r.outcomes.data());
    rounds = r.rounds;
  }
  state.counters["rounds"] = static_cast<double>(rounds);
}
BENCHMARK(BM_ExhaustiveMemoryBudget)->RangeMultiplier(8)->Range(1 << 10, 1 << 22);

/// Window merging: same checks with and without merging.
void BM_WindowMerging(benchmark::State& state) {
  const bool merge = state.range(0) != 0;
  const aig::Aig m = aig::make_miter(gen::ripple_adder(8),
                                     gen::kogge_stone_adder(8));
  for (auto _ : state) {
    auto windows = po_windows(m, 17);
    if (merge) windows = window::merge_windows(m, std::move(windows), 17);
    const auto r = exhaustive::check_batch(m, windows, {});
    benchmark::DoNotOptimize(r.outcomes.data());
  }
}
BENCHMARK(BM_WindowMerging)->Arg(0)->Arg(1);

/// Batch growth: many independent small windows (third parallelism
/// dimension of paper Fig. 3).
void BM_ExhaustiveBatchSize(benchmark::State& state) {
  const unsigned copies = static_cast<unsigned>(state.range(0));
  aig::Aig a(8 * copies);
  for (unsigned c = 0; c < copies; ++c) {
    aig::Lit acc = a.pi_lit(8 * c);
    for (unsigned i = 1; i < 8; ++i)
      acc = a.add_xor(acc, a.pi_lit(8 * c + i));
    a.add_po(acc);
  }
  const auto supports = aig::compute_supports(a, 8);
  std::vector<window::Window> windows;
  for (std::size_t i = 0; i < a.num_pos(); ++i) {
    const aig::Var v = aig::lit_var(a.po(i));
    auto w = window::build_window(
        a, supports.sets[v],
        {window::CheckItem{a.po(i), a.po(i), static_cast<std::uint32_t>(i)}});
    windows.push_back(std::move(*w));
  }
  for (auto _ : state) {
    const auto r = exhaustive::check_batch(a, windows, {});
    benchmark::DoNotOptimize(r.outcomes.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          copies);
}
BENCHMARK(BM_ExhaustiveBatchSize)->RangeMultiplier(4)->Range(4, 256);

}  // namespace
