/// \file bench_fig6.cpp
/// \brief Reproduces paper Fig. 6: runtime breakdown of the
/// simulation-based engine's phases (P / G / L / other) per benchmark.

#include "bench_common.hpp"

int main() {
  std::setvbuf(stdout, nullptr, _IONBF, 0);  // rows appear as they finish
  using namespace simsweep;
  using namespace simsweep::benchcfg;

  gen::SuiteParams sp;
  sp.doublings = doublings();
  std::printf("=== Fig. 6 reproduction: engine phase breakdown "
              "(doublings=%u) ===\n",
              sp.doublings);
  std::printf("%-16s %8s | %7s %7s %7s %7s | %s\n", "Benchmark", "total(s)",
              "P(%)", "G(%)", "L(%)", "other", "verdict");

  for (const std::string& family : gen::table2_families()) {
    const gen::BenchCase c = gen::make_case(family, sp);
    const engine::SimCecEngine eng(engine_params());
    const engine::EngineResult r = eng.check(c.original, c.optimized);
    const double total = std::max(r.stats.total_seconds, 1e-9);
    const double other =
        std::max(0.0, total - r.stats.po_seconds - r.stats.global_seconds -
                          r.stats.local_seconds);
    std::printf("%-16s %8.3f | %6.1f%% %6.1f%% %6.1f%% %6.1f%% | %s\n",
                c.name.c_str(), r.stats.total_seconds,
                100 * r.stats.po_seconds / total,
                100 * r.stats.global_seconds / total,
                100 * r.stats.local_seconds / total, 100 * other / total,
                to_string(r.verdict));
  }
  std::printf(
      "\n(paper Fig. 6: breakdown differs per case; log2 and sin are\n"
      " proved almost entirely in the P phase, multiplier and square are\n"
      " dominated by G, most other cases by repeated L phases.)\n");
  return 0;
}
