/// \file bench_scaling.cpp
/// \brief Scaling study: engine vs SAT-sweeping runtime as the designs are
/// doubled (the paper's enlargement method, §IV "_nxd").
///
/// The paper's speedups come from a massively parallel GPU amortizing
/// exhaustive simulation over multi-million-node batches against a
/// single-threaded SAT sweeper. On a small CPU host both stacks scale
/// roughly linearly in the number of doubled copies, so this bench
/// reports the per-family trend — the honest basis for extrapolating the
/// paper's shape claims (see EXPERIMENTS.md).

#include "bench_common.hpp"

#include "common/timer.hpp"

int main() {
  std::setvbuf(stdout, nullptr, _IONBF, 0);
  using namespace simsweep;
  using namespace simsweep::benchcfg;

  const unsigned max_d = env_unsigned("SIMSWEEP_MAX_DOUBLINGS", 2);
  std::printf("=== Scaling study: runtime vs doublings (0..%u) ===\n",
              max_d);
  std::printf("%-14s %3s | %10s %10s %10s | %8s\n", "Benchmark", "d",
              "SAT(s)", "SIM+SAT(s)", "Red(%)", "ratio");

  for (const std::string& family :
       {std::string("log2"), std::string("sin"), std::string("square"),
        std::string("multiplier"), std::string("voter")}) {
    for (unsigned d = 0; d <= max_d; ++d) {
      gen::SuiteParams sp;
      sp.doublings = d;
      const gen::BenchCase c = gen::make_case(family, sp);
      const aig::Aig miter = aig::make_miter(c.original, c.optimized);

      Timer ts;
      const sweep::SweepResult sat =
          sweep::SatSweeper(sweeper_params()).check_miter(miter);
      const double sat_seconds = ts.seconds();

      const portfolio::CombinedResult ours =
          portfolio::combined_check_miter(miter, combined_params());

      std::printf("%-14s %3u | %9.3f%s %10.3f %10.1f | %7.2fx\n",
                  c.name.c_str(), d, sat_seconds,
                  sat.verdict == Verdict::kEquivalent ? "" : "?",
                  ours.total_seconds, ours.reduction_percent,
                  sat_seconds / std::max(ours.total_seconds, 1e-9));
    }
  }
  return 0;
}
