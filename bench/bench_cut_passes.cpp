/// \file bench_cut_passes.cpp
/// \brief Ablation for paper Table I: the three cut-selection passes.
///
/// Runs the engine with only the L phases enabled (P and G off, so local
/// function checking does all the work) under four configurations: each
/// Table I pass alone, and all three together. Reports proved pairs and
/// miter reduction. The paper's claim: the passes prioritize different
/// cut metrics (fanout / small level / large level) and their union
/// proves more pairs than any single criterion.

#include "bench_common.hpp"

int main() {
  std::setvbuf(stdout, nullptr, _IONBF, 0);  // rows appear as they finish
  using namespace simsweep;
  using namespace simsweep::benchcfg;

  gen::SuiteParams sp;
  sp.doublings = doublings();
  std::printf("=== Table I ablation: cut-selection passes (doublings=%u) "
              "===\n",
              sp.doublings);
  std::printf("%-16s | %10s %10s %10s %10s   (proved pairs / reduction)\n",
              "Benchmark", "pass1", "pass2", "pass3", "all");

  // A representative family subset keeps the 4-config sweep affordable;
  // pass SIMSWEEP_ALL_FAMILIES=1 for the full suite.
  std::vector<std::string> families = {"hyp", "multiplier", "sqrt", "voter",
                                       "ac97_ctrl"};
  if (env_unsigned("SIMSWEEP_ALL_FAMILIES", 0) != 0)
    families = gen::table2_families();
  for (const std::string& family : families) {
    const gen::BenchCase c = gen::make_case(family, sp);
    std::printf("%-16s |", c.name.c_str());
    for (int config = 0; config < 4; ++config) {
      engine::EngineParams p = engine_params();
      p.time_limit = time_budget() / 2;  // ablation configs: half budget
      p.enable_po_phase = false;
      p.enable_global_phase = false;
      p.local_passes = {config == 0 || config == 3,
                        config == 1 || config == 3,
                        config == 2 || config == 3};
      const engine::SimCecEngine eng(p);
      const engine::EngineResult r = eng.check(c.original, c.optimized);
      std::printf(" %5zu/%3.0f%%", r.stats.pairs_proved_local,
                  r.stats.reduction_percent());
    }
    std::printf("\n");
  }
  std::printf(
      "\n(expectation: the 'all' column dominates or matches the best\n"
      " single pass on every family — cut diversity pays, paper §III-C1.)\n");
  return 0;
}
