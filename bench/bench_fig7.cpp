/// \file bench_fig7.cpp
/// \brief Reproduces paper Fig. 7: SAT time of proving the engine's
/// intermediate miters (after the P phase, after P+G, and after the full
/// P+G+L flow), normalized by the standalone SAT-sweeping time.
///
/// A value below 1.0 at "P" means the PO-checking phase alone already
/// removed logic the SAT sweeper would otherwise pay for, and so on — the
/// paper uses this plot to show every phase type matters on some case.

#include "bench_common.hpp"

#include "common/timer.hpp"

int main() {
  std::setvbuf(stdout, nullptr, _IONBF, 0);  // rows appear as they finish
  using namespace simsweep;
  using namespace simsweep::benchcfg;

  gen::SuiteParams sp;
  sp.doublings = doublings();
  std::printf(
      "=== Fig. 7 reproduction: normalized SAT time of intermediate "
      "miters (doublings=%u) ===\n",
      sp.doublings);
  std::printf("%-16s %9s | %8s %8s %8s\n", "Benchmark", "SAT(s)", "P", "PG",
              "PGL");

  for (const std::string& family : gen::table2_families()) {
    const gen::BenchCase c = gen::make_case(family, sp);
    const aig::Aig miter = aig::make_miter(c.original, c.optimized);

    // Standalone SAT time (the normalizer).
    Timer t0;
    const sweep::SweepResult base =
        sweep::SatSweeper(sweeper_params()).check_miter(miter);
    const double base_seconds = std::max(t0.seconds(), 1e-9);
    if (base.verdict != Verdict::kEquivalent) {
      std::printf("%-16s %8.2f? | (baseline undecided, skipped)\n",
                  c.name.c_str(), base_seconds);
      continue;
    }

    engine::EngineParams ep = engine_params();
    ep.capture_snapshots = true;
    const engine::EngineResult er =
        engine::SimCecEngine(ep).check_miter(miter);

    auto sat_time = [&](const aig::Aig& m) {
      Timer t;
      (void)sweep::SatSweeper(sweeper_params()).check_miter(m);
      return t.seconds() / base_seconds;
    };
    double after_p = 1.0, after_pg = 1.0;
    for (const auto& [name, snap] : er.snapshots) {
      if (name == "P") after_p = sat_time(snap);
      if (name == "PG") after_pg = sat_time(snap);
    }
    const double after_pgl = sat_time(er.reduced);
    std::printf("%-16s %9.2f | %8.3f %8.3f %8.3f\n", c.name.c_str(),
                base_seconds, after_p, after_pg, after_pgl);
  }
  std::printf(
      "\n(paper Fig. 7: normalized times drop from P to PG to PGL; which\n"
      " phase contributes most is case-dependent — P on ac97_ctrl, G on\n"
      " multiplier/square, L on most of the rest.)\n");
  return 0;
}
