/// \file bench_service.cpp
/// \brief Throughput benchmark of the batch job service (DESIGN.md §2.9):
/// a mixed stream of miter-check jobs — four distinct pairs, each
/// submitted three times, the re-submission profile of a regression
/// queue — run sequentially (no service, no cache) vs through one
/// CecService at 1/2/4 concurrent jobs.
///
/// Metric: jobs per wall second. On a single core the service's win is
/// the fingerprint-keyed verdict cache plus in-flight coalescing: of the
/// twelve jobs only four are distinct, so eight answers are served from
/// the cache (or a coalesced in-flight computation) instead of being
/// recomputed. The `service_c4_nocache` row is the transparency control:
/// same concurrency, cache disabled — its speedup shows what scheduling
/// alone buys (≈1x on one core).
///
/// JSON emitter (`--json FILE [--smoke]`) writes one row per config plus
/// the speedup table; the `bench_service_smoke` ctest keeps the perf
/// trajectory tracked in CI. Every config must reproduce the sequential
/// baseline's per-job verdicts bit-identically (the bench aborts
/// otherwise).

// Compile-time guarantee that this benchmark carries no sanitizer
// instrumentation: instrumented numbers would poison the perf trajectory.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#error "bench targets must be built without sanitizer instrumentation"
#endif
#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#error "bench targets must be built without sanitizer instrumentation"
#endif
#endif

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/verdict.hpp"
#include "gen/arith.hpp"
#include "obs/metric_names.hpp"
#include "portfolio/portfolio.hpp"
#include "service/cec_service.hpp"

namespace {

using namespace simsweep;

/// Engine/sweeper parameters sized so every job decides in milliseconds:
/// the bench measures service throughput, not single-job capacity.
portfolio::CombinedParams job_params() {
  portfolio::CombinedParams p;
  p.engine.k_P = 16;
  p.engine.k_p = 10;
  p.engine.k_g = 10;
  p.engine.k_l = 6;
  p.engine.memory_words = 1 << 16;
  return p;
}

/// Four distinct pairs, each submitted three times, duplicates
/// interleaved — so under concurrency a duplicate regularly lands while
/// its original is still in flight (the coalescing path), not only after
/// (the plain cache-hit path).
std::vector<service::JobSpec> make_jobs(bool smoke) {
  std::vector<std::pair<aig::Aig, aig::Aig>> pairs;
  // Smoke still uses a real multiplier pair: the jobs must be large
  // enough that compute (not per-rep service construction) dominates,
  // or the cache win is invisible.
  const unsigned mult_bits = 4;
  const unsigned add_bits = smoke ? 8 : 10;
  pairs.emplace_back(gen::array_multiplier(mult_bits),
                     gen::wallace_multiplier(mult_bits));
  pairs.emplace_back(gen::ripple_adder(add_bits),
                     gen::kogge_stone_adder(add_bits));
  pairs.emplace_back(gen::array_multiplier(mult_bits + 1),
                     gen::wallace_multiplier(mult_bits + 1));
  pairs.emplace_back(gen::ripple_adder(add_bits + 2),
                     gen::kogge_stone_adder(add_bits + 2));

  std::vector<service::JobSpec> jobs;
  for (int round = 0; round < 3; ++round) {
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      service::JobSpec s;
      s.id = "p" + std::to_string(i) + "_r" + std::to_string(round);
      s.a = pairs[i].first;
      s.b = pairs[i].second;
      s.params = job_params();
      jobs.push_back(std::move(s));
    }
  }
  return jobs;
}

struct RepResult {
  std::vector<Verdict> verdicts;  ///< per job, submission order
  std::uint64_t cache_hits = 0;
};

struct JsonRow {
  std::string name;
  unsigned concurrency = 0;
  std::size_t reps = 0;
  double wall_seconds = 0.0;
  std::size_t jobs = 0;  ///< completed jobs over all reps
  double jobs_per_sec = 0.0;
  std::uint64_t cache_hits = 0;  ///< of the last rep (cache starts cold)
  std::vector<Verdict> verdicts;  ///< of the last rep
};

/// Times repeated full passes over the job set (one warm-up pass first);
/// each rep starts from a cold cache.
template <typename Run>
JsonRow measure(const std::string& name, unsigned concurrency, Run run,
                std::size_t min_reps, double min_seconds) {
  JsonRow row;
  row.name = name;
  row.concurrency = concurrency;
  (void)run();  // warm-up (first-touch allocations, branch history)
  const auto start = std::chrono::steady_clock::now();
  double elapsed = 0.0;
  do {
    RepResult r = run();
    row.jobs += r.verdicts.size();
    row.cache_hits = r.cache_hits;
    row.verdicts = std::move(r.verdicts);
    ++row.reps;
    elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            start)
                  .count();
  } while (row.reps < min_reps || elapsed < min_seconds);
  row.wall_seconds = elapsed;
  row.jobs_per_sec = static_cast<double>(row.jobs) / elapsed;
  return row;
}

int run_json(const char* path, bool smoke) {
  const std::vector<service::JobSpec> jobs = make_jobs(smoke);
  const std::size_t min_reps = smoke ? 2 : 5;
  const double min_seconds = smoke ? 0.2 : 2.0;

  // Baseline: the jobs one after another through the plain combined
  // flow — no service, no cache, every duplicate recomputed.
  const auto sequential = [&]() -> RepResult {
    RepResult r;
    for (const service::JobSpec& j : jobs) {
      const aig::Aig miter = aig::make_miter(*j.a, *j.b);
      r.verdicts.push_back(
          portfolio::combined_check_miter(miter, j.params).verdict);
    }
    return r;
  };

  const auto through_service = [&](unsigned concurrency,
                                   std::size_t cache_capacity) -> RepResult {
    service::ServiceParams sp;
    sp.max_concurrent_jobs = concurrency;
    sp.cache_capacity = cache_capacity;
    service::CecService svc(sp);
    std::vector<service::JobSpec> batch = jobs;  // service moves from it
    const std::vector<service::JobResult> results =
        svc.run_batch(std::move(batch));
    RepResult r;
    for (const service::JobResult& res : results)
      r.verdicts.push_back(res.verdict);
    r.cache_hits = svc.metrics().count(obs::metric::kServiceCacheHits);
    return r;
  };

  std::vector<JsonRow> rows;
  rows.push_back(measure("sequential", 1, sequential, min_reps, min_seconds));
  for (const unsigned c : {1u, 2u, 4u}) {
    rows.push_back(measure(
        "service_c" + std::to_string(c), c,
        [&] { return through_service(c, 1024); }, min_reps, min_seconds));
  }
  rows.push_back(measure(
      "service_c4_nocache", 4, [&] { return through_service(4, 0); },
      min_reps, min_seconds));

  // Acceptance: per-job verdicts bit-identical to the sequential baseline
  // in every config.
  for (const JsonRow& r : rows) {
    if (r.verdicts != rows[0].verdicts) {
      std::fprintf(stderr, "bench_service: verdict mismatch in %s\n",
                   r.name.c_str());
      return 1;
    }
  }

  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_service: cannot open %s for writing\n", path);
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"bench_service\",\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
  std::fprintf(f,
               "  \"workload\": \"%zu jobs: 4 distinct multiplier/adder "
               "pairs x 3 submissions\",\n",
               jobs.size());
  std::fprintf(f, "  \"metric\": \"jobs_per_sec = completed miter-check "
                  "jobs per wall second\",\n  \"configs\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const JsonRow& r = rows[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"concurrency\": %u, \"reps\": %zu, "
                 "\"wall_seconds\": %.6f, \"jobs\": %zu, "
                 "\"jobs_per_sec\": %.4e, \"cache_hits\": %llu}%s\n",
                 r.name.c_str(), r.concurrency, r.reps, r.wall_seconds,
                 r.jobs, r.jobs_per_sec,
                 static_cast<unsigned long long>(r.cache_hits),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"speedup_vs_sequential\": {");
  bool first = true;
  for (const JsonRow& r : rows) {
    if (r.name == "sequential") continue;
    std::fprintf(f, "%s\"%s\": %.2f", first ? "" : ", ", r.name.c_str(),
                 r.jobs_per_sec / rows[0].jobs_per_sec);
    first = false;
  }
  std::fprintf(f, "}\n}\n");
  if (std::ferror(f) != 0 || std::fclose(f) != 0) {
    std::fprintf(stderr, "bench_service: write to %s failed\n", path);
    return 1;
  }

  for (const JsonRow& r : rows)
    std::printf("%-20s %2u jobs %6zu reps %9.3f s  %.4e jobs/sec  "
                "%llu cache hits (last rep)\n",
                r.name.c_str(), r.concurrency, r.reps, r.wall_seconds,
                r.jobs_per_sec,
                static_cast<unsigned long long>(r.cache_hits));
  std::printf("wrote %s\n", path);
  return 0;
}

int usage() {
  std::fprintf(stderr, "usage: bench_service --json FILE [--smoke]\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("uninstrumented: ok (no sanitizer feature macros at build)\n");
  const char* json_path = nullptr;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      if (i + 1 >= argc) return usage();
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      return usage();
    }
  }
  if (json_path == nullptr) return usage();
  return run_json(json_path, smoke);
}
