/// \file bench_sweeper.cpp
/// \brief Throughput benchmark of the SAT residue sweep (DESIGN.md §2.5):
/// sequential SatSweeper vs the sharded ParallelSatSweeper at 1/2/4
/// shards on a multiplier miter — the workload class whose residue
/// dominates combined-flow wall time.
///
/// Metric: candidate pairs resolved per wall second (and conflicts/sec as
/// the solver-effort view). The parallel sweeper's win on a single core
/// is algorithmic — small-support pairs are settled by exhaustive cone
/// simulation (sim_support_limit) instead of SAT, the paper's
/// simulation-first thesis — so the 1-shard parallel row isolates that
/// effect and the 2/4-shard rows add scheduling overlap.
///
/// JSON emitter (`--json FILE [--smoke]`) writes one row per config plus
/// the speedup table; the `bench_sweeper_smoke` ctest keeps the perf
/// trajectory tracked in CI. Every config must reach the same verdict as
/// the sequential baseline (the bench aborts otherwise).

// Compile-time guarantee that this benchmark carries no sanitizer
// instrumentation: instrumented numbers would poison the perf trajectory.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#error "bench targets must be built without sanitizer instrumentation"
#endif
#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#error "bench targets must be built without sanitizer instrumentation"
#endif
#endif

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "aig/miter.hpp"
#include "common/verdict.hpp"
#include "gen/arith.hpp"
#include "sweep/parallel_sweeper.hpp"
#include "sweep/sat_sweeper.hpp"

namespace {

using namespace simsweep;

struct JsonRow {
  std::string name;
  unsigned threads = 0;
  std::size_t reps = 0;
  double wall_seconds = 0.0;
  std::size_t pairs = 0;       ///< resolved candidate pairs over all reps
  double pairs_per_sec = 0.0;
  std::uint64_t conflicts = 0;
  double conflicts_per_sec = 0.0;
  std::size_t sat_calls = 0;
  std::size_t sim_resolved = 0;
  std::size_t chunks = 0;
  std::size_t steals = 0;
  Verdict verdict = Verdict::kUndecided;
};

std::size_t resolved_pairs(const sweep::SweeperStats& s) {
  return s.pairs_proved + s.pairs_disproved + s.pairs_undecided +
         s.pairs_pruned;
}

/// Times repeated full sweeps produced by `run` (one warm-up sweep
/// first); every rep is an independent sweep of the same miter.
template <typename Run>
JsonRow measure(const std::string& name, unsigned threads, Run run,
                std::size_t min_reps, double min_seconds) {
  JsonRow row;
  row.name = name;
  row.threads = threads;
  (void)run();  // warm-up (first-touch allocations, branch history)
  const auto start = std::chrono::steady_clock::now();
  double elapsed = 0.0;
  do {
    const sweep::SweepResult r = run();
    row.verdict = r.verdict;
    row.pairs += resolved_pairs(r.stats);
    row.conflicts += r.stats.conflicts;
    row.sat_calls += r.stats.sat_calls;
    row.sim_resolved += r.stats.pairs_sim_resolved;
    row.chunks += r.stats.chunks;
    row.steals += r.stats.steals;
    ++row.reps;
    elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            start)
                  .count();
  } while (row.reps < min_reps || elapsed < min_seconds);
  row.wall_seconds = elapsed;
  row.pairs_per_sec = static_cast<double>(row.pairs) / elapsed;
  row.conflicts_per_sec = static_cast<double>(row.conflicts) / elapsed;
  return row;
}

int run_json(const char* path, bool smoke) {
  // Array vs Wallace multiplier: structurally different implementations
  // with many internal equivalences — the paper's hard-residue shape.
  // Smoke keeps the 4-bit pair so the ctest stays fast.
  const unsigned bits = smoke ? 4 : 5;
  const aig::Aig miter = aig::make_miter(gen::array_multiplier(bits),
                                         gen::wallace_multiplier(bits));
  const std::size_t min_reps = smoke ? 2 : 5;
  const double min_seconds = smoke ? 0.2 : 2.0;

  std::vector<JsonRow> rows;
  {
    const sweep::SweeperParams p;  // num_threads = 1: sequential SatSweeper
    rows.push_back(measure(
        "sequential", 1,
        [&] { return sweep::SatSweeper(p).check_miter(miter); }, min_reps,
        min_seconds));
  }
  // shard_sweep_1 bypasses the dispatcher (which would route one thread
  // back to the sequential sweeper): it isolates the algorithmic effect of
  // simulation-first pair resolution on a single core, before 2/4 add
  // actual scheduling overlap.
  for (const unsigned threads : {1u, 2u, 4u}) {
    sweep::SweeperParams p;
    p.num_threads = threads;
    rows.push_back(measure(
        "shard_sweep_" + std::to_string(threads), threads,
        [&] { return sweep::ParallelSatSweeper(p).check_miter(miter); },
        min_reps, min_seconds));
  }

  // Acceptance: identical verdicts across every config.
  for (const JsonRow& r : rows) {
    if (r.verdict != rows[0].verdict) {
      std::fprintf(stderr,
                   "bench_sweeper: verdict mismatch in %s (%s vs %s)\n",
                   r.name.c_str(), to_string(r.verdict),
                   to_string(rows[0].verdict));
      return 1;
    }
  }

  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_sweeper: cannot open %s for writing\n", path);
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"bench_sweeper\",\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
  std::fprintf(f, "  \"workload\": \"array vs wallace multiplier, %u bits\",\n",
               bits);
  std::fprintf(f, "  \"metric\": \"pairs_per_sec = resolved candidate pairs "
                  "per wall second\",\n  \"configs\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const JsonRow& r = rows[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"threads\": %u, \"reps\": %zu, "
                 "\"wall_seconds\": %.6f, \"pairs\": %zu, "
                 "\"pairs_per_sec\": %.4e, \"conflicts\": %llu, "
                 "\"conflicts_per_sec\": %.4e, \"sat_calls\": %zu, "
                 "\"pairs_sim_resolved\": %zu, \"chunks\": %zu, "
                 "\"steals\": %zu, \"verdict\": \"%s\"}%s\n",
                 r.name.c_str(), r.threads, r.reps, r.wall_seconds, r.pairs,
                 r.pairs_per_sec,
                 static_cast<unsigned long long>(r.conflicts),
                 r.conflicts_per_sec, r.sat_calls, r.sim_resolved, r.chunks,
                 r.steals, to_string(r.verdict), i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"speedup_vs_sequential\": {");
  bool first = true;
  for (const JsonRow& r : rows) {
    if (r.name == "sequential") continue;
    std::fprintf(f, "%s\"%s\": %.2f", first ? "" : ", ", r.name.c_str(),
                 r.pairs_per_sec / rows[0].pairs_per_sec);
    first = false;
  }
  std::fprintf(f, "}\n}\n");
  if (std::ferror(f) != 0 || std::fclose(f) != 0) {
    std::fprintf(stderr, "bench_sweeper: write to %s failed\n", path);
    return 1;
  }

  for (const JsonRow& r : rows)
    std::printf("%-16s %2u thr %6zu reps %9.3f s  %.4e pairs/sec  "
                "%.4e conflicts/sec  %s\n",
                r.name.c_str(), r.threads, r.reps, r.wall_seconds,
                r.pairs_per_sec, r.conflicts_per_sec, to_string(r.verdict));
  std::printf("wrote %s\n", path);
  return 0;
}

int usage() {
  std::fprintf(stderr, "usage: bench_sweeper --json FILE [--smoke]\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("uninstrumented: ok (no sanitizer feature macros at build)\n");
  const char* json_path = nullptr;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      if (i + 1 >= argc) return usage();
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      return usage();
    }
  }
  if (json_path == nullptr) return usage();
  return run_json(json_path, smoke);
}
