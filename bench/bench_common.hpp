#pragma once
/// \file bench_common.hpp
/// \brief Shared configuration for the paper-reproduction benches.
///
/// Scale note (DESIGN.md §4): the paper runs 20M-60M-node miters on a GPU
/// server for hours-to-days; this host is a small CPU container. The
/// benches default to `doublings = 1` (set SIMSWEEP_DOUBLINGS to push
/// higher) and reproduce the *shape* of the results — which engine wins
/// per design family, reduction percentages, phase breakdowns — rather
/// than absolute runtimes.

// Benchmark binaries must never carry sanitizer instrumentation — the
// numbers would be meaningless and silently wrong in comparisons. The
// build already excludes bench/ from SIMSWEEP_SANITIZE builds; this
// hard-errors if instrumentation ever leaks in through another path
// (e.g. flags injected via CXXFLAGS). UBSan defines no feature macro and
// is caught by the build-level exclusion only.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#error "bench targets must be built without sanitizer instrumentation"
#endif
#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#error "bench targets must be built without sanitizer instrumentation"
#endif
#endif

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "aig/aig_analysis.hpp"
#include "aig/miter.hpp"
#include "engine/engine.hpp"
#include "gen/suite.hpp"
#include "portfolio/portfolio.hpp"
#include "sweep/sat_sweeper.hpp"

namespace simsweep::benchcfg {

inline unsigned env_unsigned(const char* name, unsigned fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? static_cast<unsigned>(std::strtoul(v, nullptr, 10))
                      : fallback;
}

inline unsigned doublings() { return env_unsigned("SIMSWEEP_DOUBLINGS", 1); }

/// Per-checker wall-clock budget (seconds); keeps a stuck baseline from
/// blocking the whole table.
inline double time_budget() {
  return static_cast<double>(env_unsigned("SIMSWEEP_TIME_BUDGET", 60));
}

/// Engine parameters: the paper's values (k_P=32, k_p=k_g=16, k_l=8, C=8)
/// rescaled to CPU-exhaustive-simulation reach (2^24 patterns one-shot).
inline engine::EngineParams engine_params() {
  engine::EngineParams p;
  p.k_P = 24;
  p.k_p = 14;
  p.k_g = 14;
  p.k_l = 8;
  p.num_cuts = 8;
  p.time_limit = time_budget();
  return p;
}

inline sweep::SweeperParams sweeper_params() {
  sweep::SweeperParams p;
  p.conflict_limit = 100000;  // paper: &cec -C 100000
  p.time_limit = time_budget();
  return p;
}

inline portfolio::CombinedParams combined_params() {
  portfolio::CombinedParams p;
  p.engine = engine_params();
  p.sweeper = sweeper_params();
  return p;
}

/// Geometric mean of a list of ratios.
inline double geomean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double log_sum = 0;
  for (double x : xs) log_sum += std::log(x);
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

struct MiterStats {
  unsigned pis;
  std::size_t pos;
  std::size_t nodes;
  std::uint32_t levels;
};

inline MiterStats miter_stats(const aig::Aig& m) {
  const auto lv = aig::compute_levels(m);
  std::uint32_t max_level = 0;
  for (aig::Lit po : m.pos())
    max_level = std::max(max_level, lv[aig::lit_var(po)]);
  return MiterStats{m.num_pis(), m.num_pos(), m.num_ands(), max_level};
}

}  // namespace simsweep::benchcfg
