/// \file bench_substrates.cpp
/// \brief Microbenchmarks of the supporting substrates: partial
/// simulation, EC building, SAT solving, BDD construction, cut
/// enumeration, miter rebuild. Useful for spotting regressions in the
/// pieces the engine's wall-clock is made of.

#include <benchmark/benchmark.h>

#include "aig/aig_analysis.hpp"
#include "aig/rebuild.hpp"
#include "bdd/bdd_cec.hpp"
#include "cnf/tseitin.hpp"
#include "cut/cut_enum.hpp"
#include "gen/arith.hpp"
#include "gen/transforms.hpp"
#include "sim/ec_manager.hpp"
#include "sim/partial_sim.hpp"
#include "sim/quality_patterns.hpp"

namespace {

using namespace simsweep;

aig::Aig bench_miter(unsigned doublings) {
  // Two genuinely different multiplier architectures: the miter never
  // folds structurally, so every substrate sees realistic work.
  const aig::Aig a = gen::double_circuit(gen::array_multiplier(6), doublings);
  const aig::Aig b =
      gen::double_circuit(gen::wallace_multiplier(6), doublings);
  return aig::make_miter(a, b);
}

void BM_PartialSimulation(benchmark::State& state) {
  const aig::Aig m = bench_miter(static_cast<unsigned>(state.range(0)));
  const auto bank = sim::PatternBank::random(m.num_pis(), 4, 7);
  for (auto _ : state) {
    const sim::Signatures sigs = sim::simulate(m, bank);
    benchmark::DoNotOptimize(sigs.words.data());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(m.num_nodes()) * 4 * 64);
}
BENCHMARK(BM_PartialSimulation)->DenseRange(0, 4, 2);

void BM_EcBuild(benchmark::State& state) {
  const aig::Aig m = bench_miter(2);
  const auto bank = sim::PatternBank::random(m.num_pis(), 4, 7);
  const sim::Signatures sigs = sim::simulate(m, bank);
  for (auto _ : state) {
    sim::EcManager ec;
    ec.build(m, sigs);
    benchmark::DoNotOptimize(ec.num_classes());
  }
}
BENCHMARK(BM_EcBuild);

void BM_CutEnumeration(benchmark::State& state) {
  const aig::Aig m = bench_miter(1);
  cut::EnumParams ep;
  ep.cut_size = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    cut::PriorityCuts pc(m, ep);
    const cut::CutScorer scorer(m, cut::Pass::kFanout);
    for (aig::Var v = m.num_pis() + 1; v < m.num_nodes(); ++v)
      pc.compute_node(v, scorer, nullptr);
    benchmark::DoNotOptimize(pc.cuts(static_cast<aig::Var>(m.num_nodes() - 1))
                                 .size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(m.num_ands()));
}
BENCHMARK(BM_CutEnumeration)->Arg(4)->Arg(6)->Arg(8);

void BM_SatSolveMiterPo(benchmark::State& state) {
  const aig::Aig m = bench_miter(0);
  for (auto _ : state) {
    sat::Solver solver;
    cnf::TseitinEncoder enc(m, solver);
    int unsat = 0;
    for (aig::Lit po : m.pos())
      unsat += solver.solve({enc.encode(po)}) == sat::Solver::Result::kUnsat;
    benchmark::DoNotOptimize(unsat);
  }
}
BENCHMARK(BM_SatSolveMiterPo);

void BM_BddBuildAdder(benchmark::State& state) {
  const aig::Aig a = gen::ripple_adder(static_cast<unsigned>(state.range(0)));
  for (auto _ : state) {
    const auto r = bdd::bdd_check(a, a);
    benchmark::DoNotOptimize(r.peak_nodes);
  }
}
BENCHMARK(BM_BddBuildAdder)->DenseRange(4, 12, 4);

void BM_QualityPatterns(benchmark::State& state) {
  const aig::Aig m = bench_miter(1);
  sim::QualityParams qp;
  qp.candidate_rounds = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::QualityStats stats;
    const auto bank = sim::quality_patterns(m, qp, &stats);
    benchmark::DoNotOptimize(bank.num_words());
    state.counters["classes"] = static_cast<double>(stats.classes_after);
  }
}
BENCHMARK(BM_QualityPatterns)->Arg(2)->Arg(8);

void BM_MiterRebuild(benchmark::State& state) {
  const aig::Aig m = bench_miter(2);
  for (auto _ : state) {
    const auto r = aig::cleanup(m);
    benchmark::DoNotOptimize(r.aig.num_ands());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(m.num_ands()));
}
BENCHMARK(BM_MiterRebuild);

}  // namespace
