/// \file bench_table2.cpp
/// \brief Reproduces paper Table II: benchmark statistics and runtime
/// comparison of the SAT-sweeping baseline ("ABC &cec" stand-in), the
/// portfolio checker ("Conformal" stand-in) and the combined
/// engine+SAT flow ("Ours (GPU+ABC)" -> here "Ours (SIM+SAT)").
///
/// Environment: SIMSWEEP_DOUBLINGS (default 2), SIMSWEEP_TIME_BUDGET
/// (seconds per checker per case, default 180).

#include "bench_common.hpp"

#include "common/timer.hpp"

int main() {
  std::setvbuf(stdout, nullptr, _IONBF, 0);  // rows appear as they finish
  using namespace simsweep;
  using namespace simsweep::benchcfg;

  gen::SuiteParams sp;
  sp.doublings = doublings();
  std::printf("=== Table II reproduction (doublings=%u, budget=%.0fs) ===\n",
              sp.doublings, time_budget());
  std::printf(
      "%-16s %8s %8s %9s %7s | %9s %9s | %8s %8s %8s %9s | %8s %8s\n",
      "Benchmark", "#PIs", "#POs", "#Nodes", "Levels", "SAT(s)", "Pfl(s)",
      "SIM(s)", "Red(%)", "SAT2(s)", "Total(s)", "vs.SAT", "vs.Pfl");

  std::vector<double> speedup_sat, speedup_pfl;
  for (const std::string& family : gen::table2_families()) {
    const gen::BenchCase c = gen::make_case(family, sp);
    const aig::Aig miter = aig::make_miter(c.original, c.optimized);
    const MiterStats ms = miter_stats(miter);

    // Baseline 1: standalone SAT sweeping (ABC &cec analogue).
    Timer t_sat;
    const sweep::SweepResult sat_result =
        sweep::SatSweeper(sweeper_params()).check_miter(miter);
    const double sat_seconds = t_sat.seconds();

    // Baseline 2: multi-engine portfolio (Conformal analogue).
    portfolio::PortfolioParams pp;
    pp.combined = combined_params();
    pp.sweeper = sweeper_params();
    Timer t_pfl;
    const portfolio::PortfolioResult pfl_result =
        portfolio::portfolio_check_miter(miter, pp);
    const double pfl_seconds = t_pfl.seconds();

    // Ours: simulation engine + SAT on the residue (paper's GPU+ABC).
    const portfolio::CombinedResult ours =
        portfolio::combined_check_miter(miter, combined_params());

    auto mark = [](Verdict v) {
      return v == Verdict::kEquivalent
                 ? ""
                 : (v == Verdict::kUndecided ? "?" : "!");
    };
    const double vs_sat = sat_seconds / std::max(ours.total_seconds, 1e-9);
    const double vs_pfl = pfl_seconds / std::max(ours.total_seconds, 1e-9);
    std::printf(
        "%-16s %8u %8zu %9zu %7u | %8.2f%s %8.2f%s | %8.2f %8.1f %8.2f "
        "%9.2f%s | %7.2fx %7.2fx\n",
        c.name.c_str(), ms.pis, ms.pos, ms.nodes, ms.levels, sat_seconds,
        mark(sat_result.verdict), pfl_seconds, mark(pfl_result.verdict),
        ours.engine_seconds, ours.reduction_percent, ours.sat_seconds,
        ours.total_seconds, mark(ours.verdict), vs_sat, vs_pfl);
    if (sat_result.verdict == Verdict::kEquivalent &&
        ours.verdict == Verdict::kEquivalent)
      speedup_sat.push_back(vs_sat);
    if (pfl_result.verdict == Verdict::kEquivalent &&
        ours.verdict == Verdict::kEquivalent)
      speedup_pfl.push_back(vs_pfl);
  }
  std::printf("%-16s %62s | %28s | %7.2fx %7.2fx\n", "Geomean", "", "",
              geomean(speedup_sat), geomean(speedup_pfl));
  std::printf(
      "\n(paper Table II: 4/9 cases fully proved by the engine alone;\n"
      " geomean speedups 4.89x vs ABC and 4.88x vs Conformal. '!' marks a\n"
      " disproof, '?' an undecided verdict within the time budget.)\n");
  return 0;
}
