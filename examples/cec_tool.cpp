/// \file cec_tool.cpp
/// \brief A command-line equivalence checker over AIGER files — the
/// "&cec"-style front end of the library.
///
/// Usage:
///   ./cec_tool a.aig b.aig        check two AIGER circuits
///   ./cec_tool --demo             generate a demo pair, write it to the
///                                 working directory, and check it
///
/// Exit code: 0 equivalent, 1 not equivalent, 2 undecided, 3 usage error.

#include <cstdio>
#include <cstring>
#include <string>

#include "aig/aig_io.hpp"
#include "aig/cex.hpp"
#include "aig/miter.hpp"
#include "gen/suite.hpp"
#include "portfolio/portfolio.hpp"

namespace {

int check(const simsweep::aig::Aig& a, const simsweep::aig::Aig& b) {
  using namespace simsweep;
  // NOLINTNEXTLINE(misc-unused-using-decls)
  portfolio::CombinedParams params;  // paper-default engine parameters
  const portfolio::CombinedResult r = portfolio::combined_check(a, b, params);
  std::printf("engine:   %.3fs, reduced %.1f%% of the miter\n",
              r.engine_seconds, r.reduction_percent);
  if (r.used_sat)
    std::printf("sat:      %.3fs on the undecided residue\n", r.sat_seconds);
  std::printf("total:    %.3fs\nverdict:  %s\n", r.total_seconds,
              to_string(r.verdict));
  if (r.cex) {
    std::printf("cex:      ");
    for (bool v : *r.cex) std::printf("%d", v ? 1 : 0);
    std::printf("\n");
    // Report the minimized cube: which inputs actually matter.
    const aig::Aig miter = aig::make_miter(a, b);
    const int po = aig::find_failing_po(miter, *r.cex);
    if (po >= 0) {
      const aig::MinimizedCex mc =
          aig::minimize_cex(miter, *r.cex, static_cast<std::size_t>(po));
      std::printf("cube:     PO %d fails whenever", po);
      for (unsigned i = 0; i < miter.num_pis(); ++i)
        if (mc.care[i])
          std::printf(" x%u=%d", i, mc.values[i] ? 1 : 0);
      std::printf("  (%zu of %u inputs)\n", mc.num_care, miter.num_pis());
    }
  }
  switch (r.verdict) {
    case Verdict::kEquivalent: return 0;
    case Verdict::kNotEquivalent: return 1;
    case Verdict::kUndecided: return 2;
  }
  return 3;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace simsweep;
  if (argc == 2 && std::strcmp(argv[1], "--demo") == 0) {
    gen::SuiteParams sp;
    sp.doublings = 1;
    const gen::BenchCase c = gen::make_case("square", sp);
    aig::write_aiger_file(c.original, "demo_original.aig");
    aig::write_aiger_file(c.optimized, "demo_optimized.aig");
    std::printf("wrote demo_original.aig (%zu ANDs) and "
                "demo_optimized.aig (%zu ANDs)\n",
                c.original.num_ands(), c.optimized.num_ands());
    return check(c.original, c.optimized);
  }
  if (argc != 3) {
    std::fprintf(stderr, "usage: %s <a.aig> <b.aig> | --demo\n", argv[0]);
    return 3;
  }
  try {
    const aig::Aig a = aig::read_aiger_file(argv[1]);
    const aig::Aig b = aig::read_aiger_file(argv[2]);
    std::printf("%s: %u PIs, %zu POs, %zu ANDs\n", argv[1], a.num_pis(),
                a.num_pos(), a.num_ands());
    std::printf("%s: %u PIs, %zu POs, %zu ANDs\n", argv[2], b.num_pis(),
                b.num_pos(), b.num_ands());
    return check(a, b);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 3;
  }
}
