/// \file cec_tool.cpp
/// \brief A command-line equivalence checker over AIGER files — the
/// "&cec"-style front end of the library.
///
/// Usage:
///   ./cec_tool [options] (<a.aig> <b.aig> | --demo)
///
/// Options:
///   --demo                 generate a demo pair in the working directory
///                          and check it
///   --json-report <path>   write the run's metric snapshot (DESIGN.md
///                          §2.3, schema simsweep.run_report.v3)
///   --sweep-threads <n>    shard the SAT residue sweep over n cooperating
///                          solvers (DESIGN.md §2.5; default 1)
///   --checkpoint <path>    durable checkpoint/resume (DESIGN.md §2.8):
///                          snapshot at phase/round boundaries, resume
///                          from the last good snapshot of the same run
///   --checkpoint-interval <sec>  throttle durable writes (default 0 =
///                          every boundary)
///   --no-resume            ignore an existing checkpoint (overwrite mode)
///   --supervise            fork the run into a watched child; on abnormal
///                          exit re-run from the last-good checkpoint with
///                          exponential backoff (requires --checkpoint)
///   --max-restarts <n>     abnormal exits tolerated by --supervise
///                          (default 3)
///   --arm-fault <site:nth> arm one catalogued injection site (DESIGN.md
///                          §2.4) for crash/IO drills; under --supervise
///                          only the first attempt is armed
///   --drill-signal <TERM|INT>  raise that signal against the tool itself
///                          after the first durable checkpoint write (the
///                          kill-and-resume walkthrough's scripted kill)
///
/// Batch service mode (DESIGN.md §2.9) — mutually exclusive with the
/// single-pair form:
///   --batch <jobs.jsonl>   run a JSON-lines job file through one
///                          CecService; per-job result lines go to stdout
///   --serve                same, but jobs stream in on stdin and result
///                          lines stream out as jobs complete (submission
///                          order)
///   --jobs <n>             concurrent jobs (service worker threads;
///                          default 1)
///   --memory-budget <MiB>  shared admission-ledger budget (default 0 =
///                          unlimited)
///   --cache-capacity <n>   verdict-cache entries (default 1024; 0
///                          disables)
///   --service-report <path>  write the aggregate service.* metric
///                          snapshot
///
/// SIGINT/SIGTERM request a graceful stop: the flow cancels at the next
/// checkpoint, the pending snapshot and the JSON report are flushed, and
/// the tool exits 4 so callers can distinguish "interrupted but resumable"
/// from a verdict.
///
/// Exit code: 0 equivalent, 1 not equivalent, 2 undecided, 3 error (bad
/// usage, unreadable/malformed input, or any internal failure — every
/// exception is caught and reported as a one-line diagnostic; the tool
/// never crashes on bad input), 4 interrupted with state flushed.

#include <atomic>
#include <cctype>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "aig/aig_io.hpp"
#include "aig/cex.hpp"
#include "aig/miter.hpp"
#include "ckpt/resume.hpp"
#include "ckpt/supervisor.hpp"
#include "fault/fault.hpp"
#include "gen/suite.hpp"
#include "obs/metric_names.hpp"
#include "obs/report.hpp"
#include "portfolio/portfolio.hpp"
#include "service/cec_service.hpp"
#include "service/json_jobs.hpp"

namespace {

/// Set by the SIGINT/SIGTERM handler; polled by the engine and sweeper at
/// their cancellation checkpoints, so a signal degrades the run to a
/// flushed kUndecided instead of killing it mid-write.
std::atomic<bool> g_cancel{false};

void handle_signal(int) { g_cancel.store(true, std::memory_order_relaxed); }

struct Options {
  bool demo = false;
  std::string report_path;
  unsigned sweep_threads = 1;
  std::string checkpoint;
  double checkpoint_interval = 0;
  bool resume = true;
  bool supervise = false;
  unsigned max_restarts = 3;
  std::string arm_site;
  std::uint64_t arm_nth = 1;
  int drill_signal = 0;
  std::string batch_path;
  bool serve = false;
  unsigned jobs = 1;
  std::uint64_t memory_budget_mib = 0;
  std::size_t cache_capacity = 1024;
  std::string service_report_path;
  std::vector<std::string> files;
};

/// The CLI-wide job defaults: every batch/serve job starts from the same
/// rescaled engine parameters as the single-pair path and shares the
/// tool's cancellation flag, then the JSON line overrides what it names.
simsweep::service::JobSpec default_job_spec() {
  simsweep::service::JobSpec spec;
  spec.params.engine.k_P = 24;
  spec.params.engine.k_p = 14;
  spec.params.engine.k_g = 14;
  spec.params.engine.cancel = &g_cancel;
  spec.params.sweeper.cancel = &g_cancel;
  return spec;
}

simsweep::service::ServiceParams service_params(const Options& opt) {
  simsweep::service::ServiceParams sp;
  sp.max_concurrent_jobs = opt.jobs;
  sp.memory_budget_bytes = opt.memory_budget_mib << 20;
  sp.cache_capacity = opt.cache_capacity;
  return sp;
}

/// Flushes the aggregate service.* snapshot; shared by batch and serve.
int write_service_report(simsweep::service::CecService& svc,
                         const Options& opt) {
  if (opt.service_report_path.empty()) return 0;
  if (!simsweep::obs::write_json_file(svc.metrics(),
                                      opt.service_report_path)) {
    std::fprintf(stderr, "error: cannot write service report to %s\n",
                 opt.service_report_path.c_str());
    return 3;
  }
  std::printf("report:   %s\n", opt.service_report_path.c_str());
  return 0;
}

/// True for lines the job-file grammar skips (blank, '#' comments).
bool is_skippable(const std::string& line) {
  for (const char c : line) {
    if (std::isspace(static_cast<unsigned char>(c)) != 0) continue;
    return c == '#';
  }
  return true;
}

/// --batch: parse the whole file, run it as one atomic batch (so
/// priorities order the dispatch), print one result line per job in
/// submission order. Exit 0 iff every line parsed and every job ran
/// error-free (individual verdicts do not affect the exit code — callers
/// read them from the result lines).
int run_batch(const Options& opt) {
  using namespace simsweep;
  std::FILE* f = std::fopen(opt.batch_path.c_str(), "r");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot open %s\n", opt.batch_path.c_str());
    return 3;
  }
  std::vector<service::JobSpec> specs;
  bool bad_input = false;
  std::string line;
  std::size_t line_no = 0;
  for (int c = std::fgetc(f); ; c = std::fgetc(f)) {
    if (c != EOF && c != '\n') {
      line.push_back(static_cast<char>(c));
      continue;
    }
    ++line_no;
    if (!is_skippable(line)) {
      service::JobSpec spec = default_job_spec();
      std::string error;
      if (service::parse_job_line(line, &spec, &error)) {
        specs.push_back(std::move(spec));
      } else {
        std::fprintf(stderr, "error: %s:%zu: %s\n", opt.batch_path.c_str(),
                     line_no, error.c_str());
        bad_input = true;
      }
    }
    line.clear();
    if (c == EOF) break;
  }
  std::fclose(f);
  if (specs.empty()) {
    std::fprintf(stderr, "error: %s holds no jobs\n", opt.batch_path.c_str());
    return 3;
  }

  service::CecService svc(service_params(opt));
  const std::vector<service::JobResult> results =
      svc.run_batch(std::move(specs));
  bool job_failed = false;
  for (const service::JobResult& r : results) {
    std::printf("%s\n", service::result_to_json_line(r).c_str());
    job_failed = job_failed || !r.error.empty();
  }
  const obs::Snapshot m = svc.metrics();
  std::printf("batch:    %llu job(s), %llu cache hit(s), %llu rejected, "
              "%llu deadline-expired\n",
              static_cast<unsigned long long>(
                  m.count(obs::metric::kServiceJobsCompleted)),
              static_cast<unsigned long long>(
                  m.count(obs::metric::kServiceCacheHits)),
              static_cast<unsigned long long>(
                  m.count(obs::metric::kServiceJobsRejected)),
              static_cast<unsigned long long>(
                  m.count(obs::metric::kServiceDeadlineExpired)));
  const int report_rc = write_service_report(svc, opt);
  if (report_rc != 0) return report_rc;
  return bad_input || job_failed ? 3 : 0;
}

/// --serve: jobs stream in on stdin (one JSON object per line), results
/// stream out on stdout in submission order, each flushed as soon as it
/// is both complete and at the head of the pending window — so a client
/// pipelining independent jobs sees answers while later jobs still run.
int run_serve(const Options& opt) {
  using namespace simsweep;
  service::CecService svc(service_params(opt));
  std::vector<std::size_t> pending;  // tickets not yet printed, FIFO
  bool had_error = false;

  const auto drain_ready = [&](bool block) {
    while (!pending.empty()) {
      service::JobResult r;
      if (block) {
        r = svc.wait(pending.front());
      } else if (!svc.poll(pending.front(), &r)) {
        return;
      }
      pending.erase(pending.begin());
      std::printf("%s\n", service::result_to_json_line(r).c_str());
      std::fflush(stdout);
      had_error = had_error || !r.error.empty();
    }
  };

  std::string line;
  for (int c = std::fgetc(stdin); ; c = std::fgetc(stdin)) {
    if (c != EOF && c != '\n') {
      line.push_back(static_cast<char>(c));
      continue;
    }
    if (!is_skippable(line)) {
      service::JobSpec spec = default_job_spec();
      std::string error;
      if (service::parse_job_line(line, &spec, &error)) {
        pending.push_back(svc.submit(std::move(spec)));
      } else {
        service::JobResult bad;
        bad.id = "parse_error";
        bad.error = error;  // result_to_json_line escapes it
        std::printf("%s\n", service::result_to_json_line(bad).c_str());
        std::fflush(stdout);
        had_error = true;
      }
    }
    line.clear();
    drain_ready(/*block=*/false);
    if (c == EOF || g_cancel.load(std::memory_order_relaxed)) break;
  }
  drain_ready(/*block=*/true);
  const int report_rc = write_service_report(svc, opt);
  if (report_rc != 0) return report_rc;
  return had_error ? 3 : 0;
}

int check(const simsweep::aig::Aig& a, const simsweep::aig::Aig& b,
          const Options& opt, const simsweep::ckpt::SupervisorProgress& sup) {
  using namespace simsweep;
  // Arm the requested drill. Under --supervise only the FIRST attempt
  // arms it: the installed plan is process-wide state, and the drill that
  // crashed the child must not re-fire in the restarted one (the point of
  // the restart is to get past the fault).
  std::optional<fault::ScopedFaultPlan> armed;
  if (!opt.arm_site.empty() && (!opt.supervise || sup.restarts == 0)) {
    fault::FaultPlan plan;
    plan.on_hit(opt.arm_site, opt.arm_nth);
    armed.emplace(plan);
  }

  // The child owns the run report: restart telemetry handed down by the
  // supervisor is published here so it lands in the JSON snapshot.
  obs::Registry registry;
  registry.add(obs::metric::kSupervisorRestarts, sup.restarts);
  registry.add(obs::metric::kSupervisorBackoffMs, sup.backoff_ms);

  ckpt::CheckpointedParams cp;
  // The paper's engine parameters rescaled to CPU exhaustive-simulation
  // reach (2^24 patterns one-shot), matching the benches' convention.
  cp.combined.engine.k_P = 24;
  cp.combined.engine.k_p = 14;
  cp.combined.engine.k_g = 14;
  cp.combined.engine.registry = &registry;
  cp.combined.engine.cancel = &g_cancel;
  cp.combined.sweeper.cancel = &g_cancel;
  cp.combined.sweeper.num_threads = opt.sweep_threads;
  cp.checkpoint_path = opt.checkpoint;
  cp.checkpoint_interval = opt.checkpoint_interval;
  cp.resume = opt.resume;
  bool drill_fired = false;
  cp.on_write = [&] {
    if (opt.drill_signal != 0 && !drill_fired) {
      drill_fired = true;
      std::raise(opt.drill_signal);
    }
  };

  const ckpt::CheckpointedResult cr = ckpt::checked_combined_check(a, b, cp);
  const portfolio::CombinedResult& r = cr.combined;
  if (cr.resumed)
    std::printf("resume:   restored %llu proven pair(s) from %s\n",
                static_cast<unsigned long long>(cr.pairs_restored),
                opt.checkpoint.c_str());
  std::printf("engine:   %.3fs, reduced %.1f%% of the miter\n",
              r.engine_seconds, r.reduction_percent);
  if (r.used_sat)
    std::printf("sat:      %.3fs on the undecided residue\n", r.sat_seconds);
  std::printf("total:    %.3fs\nverdict:  %s\n", r.total_seconds,
              to_string(r.verdict));
  if (r.cex) {
    std::printf("cex:      ");
    for (bool v : *r.cex) std::printf("%d", v ? 1 : 0);
    std::printf("\n");
    // Report the minimized cube: which inputs actually matter.
    const aig::Aig miter = aig::make_miter(a, b);
    const int po = aig::find_failing_po(miter, *r.cex);
    if (po >= 0) {
      const aig::MinimizedCex mc =
          aig::minimize_cex(miter, *r.cex, static_cast<std::size_t>(po));
      std::printf("cube:     PO %d fails whenever", po);
      for (unsigned i = 0; i < miter.num_pis(); ++i)
        if (mc.care[i])
          std::printf(" x%u=%d", i, mc.values[i] ? 1 : 0);
      std::printf("  (%zu of %u inputs)\n", mc.num_care, miter.num_pis());
    }
  }
  if (!opt.report_path.empty()) {
    if (obs::write_json_file(r.report, opt.report_path)) {
      std::printf("report:   %s\n", opt.report_path.c_str());
    } else {
      std::fprintf(stderr, "error: cannot write report to %s\n",
                   opt.report_path.c_str());
      return 3;
    }
  }
  // Interrupted-with-flush: the checkpoint (pending snapshot included)
  // and the report above are durable, so a re-invocation resumes. The
  // distinct exit code lets wrappers tell this apart from a verdict.
  if (g_cancel.load(std::memory_order_relaxed) &&
      r.verdict == Verdict::kUndecided) {
    std::printf("interrupted: checkpoint and report flushed\n");
    return 4;
  }
  switch (r.verdict) {
    case Verdict::kEquivalent: return 0;
    case Verdict::kNotEquivalent: return 1;
    case Verdict::kUndecided: return 2;
  }
  return 3;
}

int usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s [--json-report <path>] [--sweep-threads <n>] "
               "[--checkpoint <path>] [--checkpoint-interval <sec>] "
               "[--no-resume] [--supervise] [--max-restarts <n>] "
               "[--arm-fault <site:nth>] [--drill-signal <TERM|INT>] "
               "(<a.aig> <b.aig> | --demo | --batch <jobs.jsonl> | --serve)\n"
               "       batch/serve options: [--jobs <n>] "
               "[--memory-budget <MiB>] [--cache-capacity <n>] "
               "[--service-report <path>]\n",
               prog);
  return 3;
}

int run(int argc, char** argv) {
  using namespace simsweep;
  Options opt;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--demo") == 0) {
      opt.demo = true;
    } else if (std::strcmp(argv[i], "--json-report") == 0) {
      if (i + 1 >= argc) return usage(argv[0]);
      opt.report_path = argv[++i];
    } else if (std::strcmp(argv[i], "--sweep-threads") == 0) {
      // Shard count of the SAT residue sweep (DESIGN.md §2.5); 1 keeps
      // the sequential sweeper.
      if (i + 1 >= argc) return usage(argv[0]);
      const long v = std::strtol(argv[++i], nullptr, 10);
      if (v < 1 || v > 256) return usage(argv[0]);
      opt.sweep_threads = static_cast<unsigned>(v);
    } else if (std::strcmp(argv[i], "--checkpoint") == 0) {
      if (i + 1 >= argc) return usage(argv[0]);
      opt.checkpoint = argv[++i];
    } else if (std::strcmp(argv[i], "--checkpoint-interval") == 0) {
      if (i + 1 >= argc) return usage(argv[0]);
      opt.checkpoint_interval = std::strtod(argv[++i], nullptr);
      if (opt.checkpoint_interval < 0) return usage(argv[0]);
    } else if (std::strcmp(argv[i], "--no-resume") == 0) {
      opt.resume = false;
    } else if (std::strcmp(argv[i], "--supervise") == 0) {
      opt.supervise = true;
    } else if (std::strcmp(argv[i], "--max-restarts") == 0) {
      if (i + 1 >= argc) return usage(argv[0]);
      const long v = std::strtol(argv[++i], nullptr, 10);
      if (v < 0 || v > 100) return usage(argv[0]);
      opt.max_restarts = static_cast<unsigned>(v);
    } else if (std::strcmp(argv[i], "--arm-fault") == 0) {
      if (i + 1 >= argc) return usage(argv[0]);
      const std::string spec = argv[++i];
      const std::size_t colon = spec.rfind(':');
      opt.arm_site = spec.substr(0, colon);
      if (colon != std::string::npos) {
        const long n = std::strtol(spec.c_str() + colon + 1, nullptr, 10);
        if (n < 1) return usage(argv[0]);
        opt.arm_nth = static_cast<std::uint64_t>(n);
      }
      bool known = false;
      for (const char* site : fault::kCataloguedSites)
        known = known || opt.arm_site == site;
      if (!known) {
        std::fprintf(stderr, "error: unknown fault site %s\n",
                     opt.arm_site.c_str());
        return 3;
      }
    } else if (std::strcmp(argv[i], "--batch") == 0) {
      if (i + 1 >= argc) return usage(argv[0]);
      opt.batch_path = argv[++i];
    } else if (std::strcmp(argv[i], "--serve") == 0) {
      opt.serve = true;
    } else if (std::strcmp(argv[i], "--jobs") == 0) {
      if (i + 1 >= argc) return usage(argv[0]);
      const long v = std::strtol(argv[++i], nullptr, 10);
      if (v < 1 || v > 256) return usage(argv[0]);
      opt.jobs = static_cast<unsigned>(v);
    } else if (std::strcmp(argv[i], "--memory-budget") == 0) {
      if (i + 1 >= argc) return usage(argv[0]);
      const long v = std::strtol(argv[++i], nullptr, 10);
      if (v < 0) return usage(argv[0]);
      opt.memory_budget_mib = static_cast<std::uint64_t>(v);
    } else if (std::strcmp(argv[i], "--cache-capacity") == 0) {
      if (i + 1 >= argc) return usage(argv[0]);
      const long v = std::strtol(argv[++i], nullptr, 10);
      if (v < 0) return usage(argv[0]);
      opt.cache_capacity = static_cast<std::size_t>(v);
    } else if (std::strcmp(argv[i], "--service-report") == 0) {
      if (i + 1 >= argc) return usage(argv[0]);
      opt.service_report_path = argv[++i];
    } else if (std::strcmp(argv[i], "--drill-signal") == 0) {
      if (i + 1 >= argc) return usage(argv[0]);
      const std::string sig = argv[++i];
      if (sig == "TERM")
        opt.drill_signal = SIGTERM;
      else if (sig == "INT")
        opt.drill_signal = SIGINT;
      else
        return usage(argv[0]);
    } else if (argv[i][0] == '-') {
      return usage(argv[0]);
    } else {
      opt.files.emplace_back(argv[i]);
    }
  }
  const bool service_mode = !opt.batch_path.empty() || opt.serve;
  if (service_mode) {
    // Batch/serve owns the whole invocation: no single-pair inputs, and
    // the single-run plumbing (checkpoint/supervise/drill) does not
    // compose with a multiplexed job stream.
    if (!opt.batch_path.empty() && opt.serve) return usage(argv[0]);
    if (opt.demo || !opt.files.empty() || opt.supervise ||
        !opt.checkpoint.empty() || opt.drill_signal != 0)
      return usage(argv[0]);
  } else if (opt.demo ? !opt.files.empty() : opt.files.size() != 2) {
    return usage(argv[0]);
  }
  if (opt.supervise && opt.checkpoint.empty()) {
    std::fprintf(stderr,
                 "error: --supervise requires --checkpoint (a restarted "
                 "child resumes from the snapshot)\n");
    return 3;
  }

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  if (service_mode)
    return opt.serve ? run_serve(opt) : run_batch(opt);

  // One attempt = one full check. Under --supervise this body runs in a
  // forked child; exceptions must resolve to the documented one-line
  // diagnostic + exit 3 inside the attempt, because the supervisor only
  // sees the exit status.
  const auto attempt = [&](const ckpt::SupervisorProgress& sup) -> int {
    try {
      if (opt.demo) {
        // The multiplier pair exercises the whole flow (P, G and L
        // phases); simpler families are fully proved by PO checking alone.
        gen::SuiteParams sp;
        sp.doublings = 1;
        const gen::BenchCase c = gen::make_case("multiplier", sp);
        aig::write_aiger_file(c.original, "demo_original.aig");
        aig::write_aiger_file(c.optimized, "demo_optimized.aig");
        std::printf("wrote demo_original.aig (%zu ANDs) and "
                    "demo_optimized.aig (%zu ANDs)\n",
                    c.original.num_ands(), c.optimized.num_ands());
        return check(c.original, c.optimized, opt, sup);
      }
      const aig::Aig a = aig::read_aiger_file(opt.files[0].c_str());
      const aig::Aig b = aig::read_aiger_file(opt.files[1].c_str());
      std::printf("%s: %u PIs, %zu POs, %zu ANDs\n", opt.files[0].c_str(),
                  a.num_pis(), a.num_pos(), a.num_ands());
      std::printf("%s: %u PIs, %zu POs, %zu ANDs\n", opt.files[1].c_str(),
                  b.num_pis(), b.num_pos(), b.num_ands());
      return check(a, b, opt, sup);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 3;
    } catch (...) {
      std::fprintf(stderr, "error: unknown failure\n");
      return 3;
    }
  };

  if (opt.supervise) {
    ckpt::SupervisorParams sp;
    sp.max_restarts = opt.max_restarts;
    sp.backoff_initial_ms = 50;  // drills should not stall the test suite
    const ckpt::SupervisorOutcome so = ckpt::supervise(sp, attempt);
    if (so.gave_up) {
      std::fprintf(stderr,
                   "error: supervised run died abnormally %u time(s); "
                   "restart budget spent\n",
                   so.restarts + 1);
      return 3;
    }
    std::printf("supervisor: %u restart(s), %llu ms backoff\n", so.restarts,
                static_cast<unsigned long long>(so.backoff_ms));
    return so.exit_code;
  }
  return attempt(ckpt::SupervisorProgress{});
}

}  // namespace

int main(int argc, char** argv) {
  // Robustness contract (DESIGN.md §2.4): malformed inputs (truncated or
  // non-topological AIGER, unreadable files) and internal failures
  // surface as one diagnostic line and exit code 3 — never a crash or an
  // unhandled terminate. The `cli_bad_*` ctests pin this down.
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 3;
  } catch (...) {
    std::fprintf(stderr, "error: unknown failure\n");
    return 3;
  }
}
