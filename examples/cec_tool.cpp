/// \file cec_tool.cpp
/// \brief A command-line equivalence checker over AIGER files — the
/// "&cec"-style front end of the library.
///
/// Usage:
///   ./cec_tool [--json-report <path>] [--sweep-threads <n>] a.aig b.aig
///   ./cec_tool [--json-report <path>] [--sweep-threads <n>] --demo
///
/// --demo generates a demo pair, writes it to the working directory, and
/// checks it. --json-report writes the run's metric snapshot (DESIGN.md
/// §2.3, schema simsweep.run_report.v2) to <path>. --sweep-threads <n>
/// shards the SAT residue sweep over n cooperating solvers (DESIGN.md
/// §2.5; default 1 = sequential).
///
/// Exit code: 0 equivalent, 1 not equivalent, 2 undecided, 3 error (bad
/// usage, unreadable/malformed input, or any internal failure — every
/// exception is caught and reported as a one-line diagnostic; the tool
/// never crashes on bad input).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "aig/aig_io.hpp"
#include "aig/cex.hpp"
#include "aig/miter.hpp"
#include "gen/suite.hpp"
#include "obs/report.hpp"
#include "portfolio/portfolio.hpp"

namespace {

int check(const simsweep::aig::Aig& a, const simsweep::aig::Aig& b,
          const std::string& report_path, unsigned sweep_threads) {
  using namespace simsweep;
  portfolio::CombinedParams params;
  // The paper's engine parameters rescaled to CPU exhaustive-simulation
  // reach (2^24 patterns one-shot), matching the benches' convention.
  params.engine.k_P = 24;
  params.engine.k_p = 14;
  params.engine.k_g = 14;
  params.sweeper.num_threads = sweep_threads;
  const portfolio::CombinedResult r = portfolio::combined_check(a, b, params);
  std::printf("engine:   %.3fs, reduced %.1f%% of the miter\n",
              r.engine_seconds, r.reduction_percent);
  if (r.used_sat)
    std::printf("sat:      %.3fs on the undecided residue\n", r.sat_seconds);
  std::printf("total:    %.3fs\nverdict:  %s\n", r.total_seconds,
              to_string(r.verdict));
  if (r.cex) {
    std::printf("cex:      ");
    for (bool v : *r.cex) std::printf("%d", v ? 1 : 0);
    std::printf("\n");
    // Report the minimized cube: which inputs actually matter.
    const aig::Aig miter = aig::make_miter(a, b);
    const int po = aig::find_failing_po(miter, *r.cex);
    if (po >= 0) {
      const aig::MinimizedCex mc =
          aig::minimize_cex(miter, *r.cex, static_cast<std::size_t>(po));
      std::printf("cube:     PO %d fails whenever", po);
      for (unsigned i = 0; i < miter.num_pis(); ++i)
        if (mc.care[i])
          std::printf(" x%u=%d", i, mc.values[i] ? 1 : 0);
      std::printf("  (%zu of %u inputs)\n", mc.num_care, miter.num_pis());
    }
  }
  if (!report_path.empty()) {
    if (obs::write_json_file(r.report, report_path)) {
      std::printf("report:   %s\n", report_path.c_str());
    } else {
      std::fprintf(stderr, "error: cannot write report to %s\n",
                   report_path.c_str());
      return 3;
    }
  }
  switch (r.verdict) {
    case Verdict::kEquivalent: return 0;
    case Verdict::kNotEquivalent: return 1;
    case Verdict::kUndecided: return 2;
  }
  return 3;
}

int usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s [--json-report <path>] [--sweep-threads <n>] "
               "(<a.aig> <b.aig> | --demo)\n",
               prog);
  return 3;
}

int run(int argc, char** argv) {
  using namespace simsweep;
  bool demo = false;
  std::string report_path;
  unsigned sweep_threads = 1;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--demo") == 0) {
      demo = true;
    } else if (std::strcmp(argv[i], "--json-report") == 0) {
      if (i + 1 >= argc) return usage(argv[0]);
      report_path = argv[++i];
    } else if (std::strcmp(argv[i], "--sweep-threads") == 0) {
      // Shard count of the SAT residue sweep (DESIGN.md §2.5); 1 keeps
      // the sequential sweeper.
      if (i + 1 >= argc) return usage(argv[0]);
      const long v = std::strtol(argv[++i], nullptr, 10);
      if (v < 1 || v > 256) return usage(argv[0]);
      sweep_threads = static_cast<unsigned>(v);
    } else if (argv[i][0] == '-') {
      return usage(argv[0]);
    } else {
      files.emplace_back(argv[i]);
    }
  }
  if (demo) {
    if (!files.empty()) return usage(argv[0]);
    // The multiplier pair exercises the whole flow (P, G and L phases);
    // simpler families are fully proved by PO checking alone.
    gen::SuiteParams sp;
    sp.doublings = 1;
    const gen::BenchCase c = gen::make_case("multiplier", sp);
    aig::write_aiger_file(c.original, "demo_original.aig");
    aig::write_aiger_file(c.optimized, "demo_optimized.aig");
    std::printf("wrote demo_original.aig (%zu ANDs) and "
                "demo_optimized.aig (%zu ANDs)\n",
                c.original.num_ands(), c.optimized.num_ands());
    return check(c.original, c.optimized, report_path, sweep_threads);
  }
  if (files.size() != 2) return usage(argv[0]);
  const aig::Aig a = aig::read_aiger_file(files[0].c_str());
  const aig::Aig b = aig::read_aiger_file(files[1].c_str());
  std::printf("%s: %u PIs, %zu POs, %zu ANDs\n", files[0].c_str(),
              a.num_pis(), a.num_pos(), a.num_ands());
  std::printf("%s: %u PIs, %zu POs, %zu ANDs\n", files[1].c_str(),
              b.num_pis(), b.num_pos(), b.num_ands());
  return check(a, b, report_path, sweep_threads);
}

}  // namespace

int main(int argc, char** argv) {
  // Robustness contract (DESIGN.md §2.4): malformed inputs (truncated or
  // non-topological AIGER, unreadable files) and internal failures
  // surface as one diagnostic line and exit code 3 — never a crash or an
  // unhandled terminate. The `cli_bad_*` ctests pin this down.
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 3;
  } catch (...) {
    std::fprintf(stderr, "error: unknown failure\n");
    return 3;
  }
}
