/// \file verify_optimization.cpp
/// \brief The logic-synthesis use case: verify an optimization pass.
///
/// Mirrors the paper's experimental setup (§IV): take a design, run the
/// resyn2-style optimizer on it, and prove original == optimized with the
/// combined engine+SAT flow ("GPU+ABC" in the paper). Also demonstrates
/// what happens when the "optimizer" has a bug.
///
/// Run: ./verify_optimization [family]   (default: multiplier)

#include <cstdio>
#include <string>
#include <vector>

#include "aig/aig_analysis.hpp"
#include "gen/suite.hpp"
#include "opt/resyn.hpp"
#include "portfolio/portfolio.hpp"

int main(int argc, char** argv) {
  using namespace simsweep;
  const std::string family = argc > 1 ? argv[1] : "multiplier";

  gen::SuiteParams sp;
  sp.doublings = 1;
  const gen::BenchCase bench = gen::make_case(family, sp);
  std::printf("case %s: original %zu ANDs, optimized %zu ANDs\n",
              bench.name.c_str(), bench.original.num_ands(),
              bench.optimized.num_ands());

  portfolio::CombinedParams params;
  params.engine.k_P = 24;
  params.engine.k_p = 14;
  params.engine.k_g = 14;

  const portfolio::CombinedResult r =
      portfolio::combined_check(bench.original, bench.optimized, params);
  std::printf(
      "verdict: %s  engine %.3fs (reduced %.1f%%)%s total %.3fs\n",
      to_string(r.verdict), r.engine_seconds, r.reduction_percent,
      r.used_sat ? ", SAT finished the residue," : ",", r.total_seconds);

  // A buggy "optimization": copy the optimized circuit but flip one
  // fanin polarity deep inside (an id map keeps the copy well-formed even
  // when structural hashing shifts node ids).
  const aig::Aig& opt_aig = bench.optimized;
  aig::Aig buggy(opt_aig.num_pis());
  std::vector<aig::Lit> lit_of(opt_aig.num_nodes());
  lit_of[0] = aig::kLitFalse;
  for (unsigned i = 0; i < opt_aig.num_pis(); ++i)
    lit_of[i + 1] = buggy.pi_lit(i);
  const aig::Var victim = opt_aig.num_pis() + 42;
  for (aig::Var v = opt_aig.num_pis() + 1; v < opt_aig.num_nodes(); ++v) {
    aig::Lit f0 = opt_aig.fanin0(v);
    const aig::Lit f1 = opt_aig.fanin1(v);
    if (v == victim) f0 = aig::lit_not(f0);
    lit_of[v] = buggy.add_and(
        aig::lit_notcond(lit_of[aig::lit_var(f0)], aig::lit_compl(f0)),
        aig::lit_notcond(lit_of[aig::lit_var(f1)], aig::lit_compl(f1)));
  }
  for (aig::Lit po : opt_aig.pos())
    buggy.add_po(
        aig::lit_notcond(lit_of[aig::lit_var(po)], aig::lit_compl(po)));

  const portfolio::CombinedResult rb =
      portfolio::combined_check(bench.original, buggy, params);
  std::printf("buggy optimizer verdict: %s%s\n", to_string(rb.verdict),
              rb.cex ? " (counter-example extracted)" : "");
  return r.verdict == Verdict::kEquivalent ? 0 : 1;
}
