/// \file engine_anatomy.cpp
/// \brief A look inside the engine: phase breakdown, intermediate miters
/// and the effect of each flow stage (paper Figs. 5-7 in miniature).
///
/// Run: ./engine_anatomy [family] [doublings]

#include <cstdio>
#include <string>

#include "engine/engine.hpp"
#include "gen/suite.hpp"
#include "obs/report.hpp"
#include "sweep/sat_sweeper.hpp"

int main(int argc, char** argv) {
  using namespace simsweep;
  const std::string family = argc > 1 ? argv[1] : "sin";
  gen::SuiteParams sp;
  sp.doublings = argc > 2 ? std::stoul(argv[2]) : 1;
  const gen::BenchCase bench = gen::make_case(family, sp);

  const aig::Aig miter = aig::make_miter(bench.original, bench.optimized);
  std::printf("%s: miter has %u PIs, %zu POs, %zu AND nodes\n",
              bench.name.c_str(), miter.num_pis(), miter.num_pos(),
              miter.num_ands());

  engine::EngineParams params;
  params.k_P = 24;
  params.k_p = 14;
  params.k_g = 14;
  params.capture_snapshots = true;
  const engine::SimCecEngine engine(params);
  const engine::EngineResult r = engine.check_miter(miter);

  std::printf("verdict: %s in %.3fs\n", to_string(r.verdict),
              r.stats.total_seconds);
  const auto pct = [&](double s) {
    return r.stats.total_seconds > 0 ? 100.0 * s / r.stats.total_seconds
                                     : 0.0;
  };
  std::printf("phase breakdown (paper Fig. 6 analogue):\n");
  std::printf("  P (PO checking):     %6.3fs  %5.1f%%  (%zu/%zu POs)\n",
              r.stats.po_seconds, pct(r.stats.po_seconds),
              r.stats.pos_proved, r.stats.pos_total);
  std::printf("  G (global checking): %6.3fs  %5.1f%%  (%zu pairs)\n",
              r.stats.global_seconds, pct(r.stats.global_seconds),
              r.stats.pairs_proved_global);
  std::printf("  L (local checking):  %6.3fs  %5.1f%%  (%zu pairs, %zu "
              "phases)\n",
              r.stats.local_seconds, pct(r.stats.local_seconds),
              r.stats.pairs_proved_local, r.stats.local_phases);

  std::printf("intermediate miters (paper Fig. 7 analogue):\n");
  std::printf("  start: %zu ANDs\n", r.stats.initial_ands);
  for (const auto& [name, snap] : r.snapshots)
    std::printf("  after %-3s %zu ANDs\n", name.c_str(), snap.num_ands());
  std::printf("  final: %zu ANDs (%.1f%% reduced)\n", r.stats.final_ands,
              r.stats.reduction_percent());

  if (r.verdict == Verdict::kUndecided) {
    std::printf("handing the residue to the SAT sweeper...\n");
    const sweep::SatSweeper sweeper;
    const sweep::SweepResult sr = sweeper.check_miter(r.reduced);
    std::printf("SAT verdict: %s in %.3fs (%zu SAT calls)\n",
                to_string(sr.verdict), sr.stats.seconds,
                sr.stats.sat_calls);
  }

  std::printf("run report (schema %s):\n%s\n", obs::kSchemaId,
              obs::to_json(r.report).c_str());
  return 0;
}
