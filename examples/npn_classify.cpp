/// \file npn_classify.cpp
/// \brief Function-profile analysis: enumerate 4-cuts of a design,
/// compute the local functions, and histogram their NPN classes.
///
/// This is the kind of analysis that drives rewriting databases: a
/// handful of NPN classes typically covers almost all local functions of
/// a real design. Demonstrates the cut enumerator, local truth tables
/// and the NPN canonizer working together.
///
/// Run: ./npn_classify [family]   (default: multiplier)

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "aig/aig_analysis.hpp"
#include "aig/aig_utils.hpp"
#include "cut/cut_enum.hpp"
#include "gen/suite.hpp"
#include "tt/npn.hpp"

int main(int argc, char** argv) {
  using namespace simsweep;
  const std::string family = argc > 1 ? argv[1] : "multiplier";
  gen::SuiteParams sp;
  sp.doublings = 0;
  const gen::BenchCase bench = gen::make_case(family, sp);
  const aig::Aig& a = bench.original;
  std::printf("%s: %s\n", bench.name.c_str(), aig::stats_line(a).c_str());

  // Priority 4-cuts for every node (plain topological schedule).
  cut::EnumParams ep;
  ep.cut_size = 4;
  ep.num_cuts = 4;
  cut::PriorityCuts pc(a, ep);
  const cut::CutScorer scorer(a, cut::Pass::kFanout);
  for (aig::Var v = a.num_pis() + 1; v < a.num_nodes(); ++v)
    pc.compute_node(v, scorer, nullptr);

  // Histogram the NPN classes of all local functions.
  std::map<tt::Word, std::size_t> histogram;
  std::size_t total = 0;
  for (aig::Var v = a.num_pis() + 1; v < a.num_nodes(); ++v) {
    for (const cut::Cut& c : pc.cuts(v).cuts()) {
      std::vector<aig::Var> leaves(c.leaves.begin(),
                                   c.leaves.begin() + c.size);
      const tt::TruthTable f =
          aig::cone_truth_table(a, aig::make_lit(v), leaves);
      // Pad to 4 variables so all classes live in one space.
      const tt::Word packed = f.extend(4).words()[0] & tt::word_mask(4);
      ++histogram[tt::npn_canonize(packed, 4).canon];
      ++total;
    }
  }

  std::vector<std::pair<std::size_t, tt::Word>> ranked;
  for (const auto& [canon, count] : histogram)
    ranked.emplace_back(count, canon);
  std::sort(ranked.rbegin(), ranked.rend());

  std::printf("%zu local functions over %zu NPN classes; top classes:\n",
              total, histogram.size());
  std::size_t shown = 0, covered = 0;
  for (const auto& [count, canon] : ranked) {
    if (shown++ >= 10) break;
    covered += count;
    std::printf("  canon %04llx  %6zu cuts  (%5.1f%%)\n",
                static_cast<unsigned long long>(canon), count,
                100.0 * static_cast<double>(count) /
                    static_cast<double>(total));
  }
  std::printf("top-10 classes cover %.1f%% of all local functions\n",
              100.0 * static_cast<double>(covered) /
                  static_cast<double>(total));
  return 0;
}
