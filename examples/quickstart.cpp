/// \file quickstart.cpp
/// \brief Five-minute tour of the SimSweep public API.
///
/// Builds two structurally different adders (ripple-carry vs Kogge-Stone),
/// proves them equivalent with the simulation-based CEC engine, then
/// breaks one of them and shows the counter-example.
///
/// Run: ./quickstart

#include <cstdio>

#include "engine/engine.hpp"
#include "gen/arith.hpp"

int main() {
  using namespace simsweep;

  // 1. Two implementations of the same 8-bit adder.
  const aig::Aig ripple = gen::ripple_adder(8);
  const aig::Aig prefix = gen::kogge_stone_adder(8);
  std::printf("ripple adder:      %zu AND nodes\n", ripple.num_ands());
  std::printf("kogge-stone adder: %zu AND nodes\n", prefix.num_ands());

  // 2. Prove them equivalent by exhaustive simulation.
  engine::SimCecEngine engine;  // paper-default parameters
  const engine::EngineResult proof = engine.check(ripple, prefix);
  std::printf("verdict: %s  (%.1f%% of the miter reduced, %.3fs)\n",
              to_string(proof.verdict), proof.stats.reduction_percent(),
              proof.stats.total_seconds);

  // 3. Break sum bit 4 (gate it with input bit 0) and check again.
  aig::Aig broken = gen::ripple_adder(8);
  broken.set_po(4, broken.add_and(broken.po(4), broken.pi_lit(0)));
  const engine::EngineResult refutation = engine.check(ripple, broken);
  std::printf("broken adder verdict: %s\n", to_string(refutation.verdict));
  if (refutation.cex) {
    std::printf("counter-example PI assignment:");
    for (bool b : *refutation.cex) std::printf(" %d", b ? 1 : 0);
    std::printf("\n");
    const auto out_good = ripple.evaluate(*refutation.cex);
    const auto out_bad = broken.evaluate(*refutation.cex);
    for (std::size_t i = 0; i < out_good.size(); ++i)
      if (out_good[i] != out_bad[i])
        std::printf("  output bit %zu differs: %d vs %d\n", i,
                    out_good[i] ? 1 : 0, out_bad[i] ? 1 : 0);
  }
  return proof.verdict == Verdict::kEquivalent &&
                 refutation.verdict == Verdict::kNotEquivalent
             ? 0
             : 1;
}
